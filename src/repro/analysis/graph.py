"""Whole-program model: per-module summaries, import graph, call graph.

The per-file checkers of PR 1 see one AST at a time, so anything routed
through a helper in another module — an unseeded generator, an ad-hoc
seed derivation, a ``Table`` with the wrong columns — escapes them.
This module turns the tree into data the flow-sensitive rules (REP102
rng-provenance, REP202 cross-module schema flow) can reason over:

* a :class:`ModuleSummary` per file — imports, module-level function
  signatures, RNG constructions with their entropy provenance, every
  call site with *symbolic* argument values, per-function *effect*
  sites (module-global writes, mutable-default mutation, env/fs/
  process effects, unordered-collection iteration) and every
  process-boundary ship site (pool submissions, ``Process`` targets,
  result pipes, disk-cache payloads);
* a :class:`ProjectGraph` over all summaries — the package-internal
  import graph (and its transitive closure, which keys the incremental
  cache), a qualified-name function index resolved through package
  ``__init__`` re-exports, entropy-parameter propagation, per-function
  input-schema inference from call sites, and the worker-reachability
  fixpoint the parallel-safety rules (REP103/REP203/REP303, DESIGN
  §11) consult.

Summaries hold no AST nodes; they are small, picklable and cached on
disk keyed by the file's content hash, so a warm run rebuilds the whole
graph without parsing a single file.

The RNG taint lattice (see DESIGN §10)::

    GOOD < UNKNOWN < LITERAL ~ ADHOC < UNSEEDED

``GOOD`` means provably derived from a caller-supplied value or a
``SeedSequence``/``spawn`` chain; ``LITERAL`` is a hard-coded seed,
``ADHOC`` arithmetic seed derivation (``seed + 10`` — use
``SeedSequence.spawn`` instead), ``UNSEEDED`` OS entropy. ``UNKNOWN``
(an expression the analysis cannot classify) is deliberately *not*
reported: the rules only flag provable taint, never uncertainty.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "GOOD",
    "UNKNOWN",
    "LITERAL",
    "ADHOC",
    "UNSEEDED",
    "SymVal",
    "RngConstruction",
    "CallSite",
    "EffectSite",
    "ShippedValue",
    "BoundarySite",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "summarize_module",
    "build_project_graph",
]

# -- effect lattice -----------------------------------------------------------

#: Per-function effect kinds (powerset lattice, join = union). The
#: first two are what REP103 reports for worker-reachable functions;
#: ``env``/``fs``/``process`` are tracked for completeness (and tests)
#: but never fire on their own; ``unordered-iter`` feeds REP203.
GLOBAL_WRITE = "global-write"  # assignment/mutation of module-level state
DEFAULT_MUTATION = "default-mutation"  # mutation of a mutable default
ENV_EFFECT = "env"  # os.environ / putenv writes
FS_EFFECT = "fs"  # file writes, deletes, mkdir
PROC_EFFECT = "process"  # subprocess / fork / exec
UNORDERED_ITER = "unordered-iter"  # set iteration into an ordered sink
UNORDERED_ITER_REF = "unordered-iter-ref"  # same, via a call result

#: Container-mutating method names; a call ``X.append(...)`` where
#: ``X`` is module-level (or a mutable default) is a write to it.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "cache_clear",
    }
)

# -- RNG provenance lattice ---------------------------------------------------

GOOD = "good"  # caller-supplied value or SeedSequence/spawn chain
UNKNOWN = "unknown"  # unclassifiable; never reported
LITERAL = "literal"  # hard-coded seed constant
ADHOC = "adhoc"  # arithmetic seed derivation (seed + 10, 2 * seed, ...)
UNSEEDED = "unseeded"  # OS entropy (default_rng() / SeedSequence())

#: Join order: the worst provenance of any contributing operand wins.
_SEVERITY = {GOOD: 0, UNKNOWN: 1, LITERAL: 2, ADHOC: 3, UNSEEDED: 4}


def join(*provs: str) -> str:
    return max(provs, key=_SEVERITY.__getitem__) if provs else UNKNOWN


#: numpy.random callables that construct a generator/bit generator from
#: an entropy argument (first positional or ``seed=``).
_RNG_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)

_SEEDSEQUENCE = "numpy.random.SeedSequence"

#: Table methods that return a (possibly extended) view of their
#: receiver; mirrors REP201's tracking.
_TABLE_METHODS = frozenset({"select", "sort_by", "with_columns", "drop", "head"})

#: Set methods whose result is still an unordered set.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Executor/pool methods that ship their arguments to worker processes.
_POOL_SHIP = frozenset(
    {"submit", "apply_async", "map", "starmap", "imap", "imap_unordered"}
)


# -- symbolic values ----------------------------------------------------------


@dataclass(frozen=True)
class SymVal:
    """Symbolic value of an expression, as far as one file can tell.

    ``kind`` is one of ``table`` (a Table; ``columns`` lists its known
    column set, or None), ``rng`` (generator/seed material; ``prov`` is
    its lattice point), ``ref`` (result of calling ``ref``, resolved
    against the graph later), ``param`` (an enclosing-function
    parameter), ``uset`` (a set/frozenset or anything inheriting its
    iteration order), ``funcref`` (a module-level function used as a
    value; ``ref`` is its qualname), ``localfn``/``localcls`` (a
    lambda, nested def or local class — unpicklable by construction),
    ``handle`` (an open file object), ``pool`` (an executor/
    multiprocessing context), ``cache`` (a disk cache) or ``other``.
    """

    kind: str
    columns: tuple[str, ...] | None = None
    prov: str | None = None
    ref: str | None = None
    param: str | None = None


_OTHER = SymVal(kind="other")


@dataclass(frozen=True)
class RngConstruction:
    """One generator/SeedSequence construction site and its provenance."""

    factory: str  # "default_rng", "SeedSequence", ...
    prov: str
    line: int
    col: int
    in_function: str | None  # enclosing function name, for messages


@dataclass(frozen=True)
class CallSite:
    """A resolved call with symbolic arguments."""

    callee: str  # best-effort dotted name ("repro.synth.x.f" or "f")
    line: int
    col: int
    args: tuple[SymVal, ...]
    kwargs: tuple[tuple[str, SymVal], ...]
    #: Enclosing *top-level* function name (None at module level or in
    #: methods); the worker-reachability call graph hangs off this.
    in_function: str | None = None


@dataclass(frozen=True)
class EffectSite:
    """One side effect observed in a function (or module) body.

    ``kind`` is one of the effect-lattice points (:data:`GLOBAL_WRITE`,
    :data:`DEFAULT_MUTATION`, :data:`ENV_EFFECT`, :data:`FS_EFFECT`,
    :data:`PROC_EFFECT`, :data:`UNORDERED_ITER`,
    :data:`UNORDERED_ITER_REF`); ``detail`` names the written global /
    mutated param / iterated expression (for ``unordered-iter-ref``, the
    qualname of the call whose result is iterated, resolved against the
    graph).
    """

    kind: str
    detail: str
    line: int
    col: int
    #: What consumed the value, for unordered-iter messages ("join",
    #: "list", "for-loop", ...); empty for write effects.
    sink: str = ""


@dataclass(frozen=True)
class ShippedValue:
    """One value crossing a process boundary at a :class:`BoundarySite`.

    ``kind`` mirrors :class:`SymVal` kinds; REP303 flags ``lambda``/
    ``localfn``/``localcls``/``handle`` (statically unpicklable), and
    ``funcref`` values become worker-reachability roots.
    """

    label: str  # "callable", "arg 2", "target=", "args[0]", ...
    kind: str
    detail: str  # qualname / lambda marker / short source text
    line: int
    col: int


@dataclass(frozen=True)
class BoundarySite:
    """One call that ships values into another process.

    ``kind``: ``pool-submit`` | ``pool-map`` | ``process`` |
    ``pipe-send`` | ``cache-put`` | ``pool-init``.
    """

    kind: str
    desc: str  # rendered call ("pool.submit", "ctx.Process", ...)
    values: tuple[ShippedValue, ...]
    line: int
    col: int
    in_function: str | None = None


@dataclass
class FunctionSummary:
    """What the graph needs to know about one module-level function."""

    qualname: str  # "repro.synth.google_model.generate"
    name: str
    params: tuple[str, ...] = ()
    defaults: int = 0  # number of trailing params with defaults
    #: Params annotated ``Table`` plus params whose only observed uses
    #: are Table-shaped (string subscripts / Table methods).
    table_params: tuple[str, ...] = ()
    annotated_table_params: tuple[str, ...] = ()
    #: Param -> ((column, line, col), ...) string-subscript reads.
    param_accesses: dict[str, tuple[tuple[str, int, int], ...]] = field(
        default_factory=dict
    )
    #: Param -> columns the function itself adds via with_columns.
    param_added: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Params annotated ``np.random.Generator`` or flowing into an
    #: entropy position (directly; the graph closes this over calls).
    entropy_params: tuple[str, ...] = ()
    #: Params passed onward as entropy args: param -> callee qualnames.
    entropy_forwards: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Provenance of a returned generator (lattice point, or a param
    #: name prefixed "param:", or a call ref prefixed "ref:"), if the
    #: function can return one.
    rng_return: str | None = None
    #: Known column set of a returned Table literal, if derivable.
    returns_columns: tuple[str, ...] | None = None
    #: Return is the result of calling another function ("ref:<name>").
    returns_ref: str | None = None
    #: Side effects observed in the body (effect-lattice join over all
    #: statements; nested defs/lambdas fold into their encloser).
    effects: tuple[EffectSite, ...] = ()
    #: Params whose default is a mutable literal (dict/list/set).
    mutable_default_params: tuple[str, ...] = ()
    #: Params the body *calls* — higher-order edges: a funcref bound to
    #: one of these at a call site becomes a callee of this function.
    called_params: tuple[str, ...] = ()
    #: The function can return a set/unordered value (REP203 follows
    #: ``returns_ref`` chains through this).
    returns_unordered: bool = False


@dataclass
class ModuleSummary:
    """Per-file facts; picklable, cached by content hash."""

    module: str | None  # dotted name; None outside the src roots
    relpath: str
    #: Absolute package-internal modules this file imports.
    imports: tuple[str, ...] = ()
    #: Local name -> qualified name, from import statements (for
    #: ``__init__`` files this is the re-export map).
    exports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    constructions: tuple[RngConstruction, ...] = ()
    calls: tuple[CallSite, ...] = ()
    #: Process-boundary ship sites anywhere in the file.
    boundaries: tuple[BoundarySite, ...] = ()
    #: Effects of module-level statements (outside any function).
    module_effects: tuple[EffectSite, ...] = ()
    #: Resource-lifecycle facts from the CFG layer (REP801-REP803):
    #: per-function param actions and call-site resource states.
    lifecycle: object | None = None
    parse_error: str | None = None
    parse_error_line: int = 1


# -- per-file summarization ---------------------------------------------------


def _annotation_mentions(annotation: ast.expr | None, name: str) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
        if isinstance(node, ast.Constant) and node.value == name:
            return True
    return False


class _Scope:
    """Flow-sensitive-enough symbolic environment for one function body.

    A single forward pass over the statements; the last binding of a
    name wins, loops and branches are visited in source order. That is
    deliberately coarse — provenance only has to be *provable*, and
    re-binding a seeded generator to something worse is caught at the
    new binding's own construction site.
    """

    def __init__(
        self,
        summarizer: "_ModuleSummarizer",
        params: tuple[str, ...],
        fn_name: str | None,
    ) -> None:
        self.s = summarizer
        self.params = set(params)
        self.fn_name = fn_name
        self.env: dict[str, SymVal] = {}

    # -- expression evaluation ------------------------------------------

    def eval(self, node: ast.expr | None) -> SymVal:
        if node is None:
            return _OTHER
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return SymVal(kind="param", param=node.id)
            if self.s.is_module_uset(node.id):
                return SymVal(kind="uset")
            qual = self.s.resolve_name_ref(node.id)
            if qual is not None:
                return SymVal(kind="funcref", ref=qual)
            return _OTHER
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or node.value is None:
                return _OTHER
            if isinstance(node.value, (int, float)):
                return SymVal(kind="rng", prov=LITERAL)
            return _OTHER
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self.eval(elt)
            return SymVal(kind="uset")
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            # The body is evaluated in the enclosing scope so its calls
            # join the call graph (conservative: a lambda built here is
            # assumed to run here or downstream of here).
            self.eval(node.body)
            return SymVal(kind="localfn", ref="<lambda>")
        if isinstance(node, ast.BinOp):
            # Set arithmetic (difference/union/...) stays unordered.
            left = self.eval(node.left)
            right = self.eval(node.right)
            if left.kind == "uset" or right.kind == "uset":
                return SymVal(kind="uset")
        if isinstance(node, (ast.BinOp, ast.UnaryOp)):
            # Arithmetic over seeds is ad-hoc stream derivation unless
            # every operand is already unclassifiable.
            operands = [
                self.eval(sub)
                for sub in ast.walk(node)
                if isinstance(sub, (ast.Name, ast.Constant))
            ]
            touched = [
                v for v in operands if v.kind in ("param", "rng")
            ]
            if touched:
                return SymVal(kind="rng", prov=ADHOC)
            return _OTHER
        if isinstance(node, ast.IfExp):
            return _join_vals(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Subscript):
            # children[i] of a spawn list keeps the list's provenance.
            base = self.eval(node.value)
            if base.kind == "rng":
                return base
            return _OTHER
        if isinstance(node, ast.Tuple):
            vals = [self.eval(elt) for elt in node.elts]
            if vals and all(v.kind == "rng" for v in vals):
                return _join_vals(*vals)
            return _OTHER
        if isinstance(node, ast.Dict):
            return _OTHER
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        return _OTHER

    def _eval_comprehension(self, node: ast.expr) -> SymVal:
        """A comprehension's output order inherits its first iterable's."""
        generators = node.generators  # type: ignore[attr-defined]
        first = self.eval(generators[0].iter) if generators else _OTHER
        for gen in generators[1:]:
            self.eval(gen.iter)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
            self.eval(node.value)
        else:
            self.eval(node.elt)  # type: ignore[attr-defined]
        if isinstance(node, ast.SetComp):
            return SymVal(kind="uset")
        if first.kind in ("uset", "ref"):
            # uset: the produced list/dict/stream is in set order;
            # ref: defer to the graph (flags only if the callee provably
            # returns a set).
            return first
        return _OTHER

    def _entropy_arg(self, node: ast.Call) -> ast.expr | None:
        """The entropy operand of a generator/SeedSequence construction."""
        if node.args:
            return node.args[0]
        for kw in node.keywords:
            if kw.arg in ("seed", "entropy"):
                return kw.value
        return None

    def _entropy_prov(self, node: ast.Call) -> str:
        arg = self._entropy_arg(node)
        if arg is None:
            return UNSEEDED
        return self.rng_prov(self.eval(arg), arg)

    def rng_prov(self, val: SymVal, arg: ast.expr | None = None) -> str:
        """Project a symbolic value onto the RNG lattice."""
        if val.kind == "param":
            # Caller-supplied: provenance is enforced at the call site.
            self.s.note_entropy_param(self.fn_name, val.param)
            return GOOD
        if val.kind == "rng":
            return val.prov or UNKNOWN
        if val.kind == "ref":
            resolved = self.s.graph_placeholder_rng(val.ref)
            return resolved
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> SymVal:
        callee = self.s.resolve_callee(node.func)
        # SeedSequence(...)/default_rng(...)-family: provenance of the
        # entropy argument, recorded as a construction site.
        if callee in _RNG_FACTORIES or callee == _SEEDSEQUENCE:
            prov = self._entropy_prov(node)
            self.s.record_construction(
                factory=callee.rsplit(".", 1)[-1],
                prov=prov,
                line=node.lineno,
                col=node.col_offset,
                in_function=self.fn_name,
            )
            return SymVal(kind="rng", prov=prov)
        builtin = self._eval_builtin(node, callee)
        if builtin is not None:
            return builtin
        basename = callee.rsplit(".", 1)[-1] if callee else ""
        if basename in ("ProcessPoolExecutor", "Pool"):
            values = self._executor_init_values(node)
            if values:
                self.s.record_boundary("pool-init", basename, values, node)
            return SymVal(kind="pool")
        if callee == "multiprocessing.get_context":
            return SymVal(kind="pool")  # its .Process/.Pipe ship values
        if basename in ("DiskCache", "LintCache"):
            for arg in node.args:
                self.eval(arg)
            return SymVal(kind="cache")
        if basename == "Process" and any(
            kw.arg == "target" for kw in node.keywords
        ):
            self.s.record_boundary(
                "process", basename, self._process_values(node), node
            )
            return _OTHER
        # spawn()/attribute calls on seed material keep its provenance.
        if isinstance(node.func, ast.Attribute):
            recv = self.eval(node.func.value)
            if recv.kind == "rng" and node.func.attr in ("spawn", "jumped"):
                return recv
            if recv.kind in ("table", "param") and (
                node.func.attr in _TABLE_METHODS
            ):
                return self._table_method(recv, node)
            if recv.kind == "uset" and node.func.attr in _SET_METHODS:
                return SymVal(kind="uset")
            if node.func.attr == "join" and node.args:
                self.s.note_unordered(
                    self.eval(node.args[0]), node.args[0], sink="join"
                )
                return _OTHER
            shipped = self._maybe_boundary(node, recv)
            if shipped is not None:
                return shipped
        if callee == "Table" or (callee or "").endswith(".Table"):
            return SymVal(kind="table", columns=_dict_literal_keys(node))
        if callee is not None:
            self.s.record_call(node, callee, self)
            return SymVal(kind="ref", ref=callee)
        return _OTHER

    def _eval_builtin(self, node: ast.Call, callee: str | None) -> SymVal | None:
        """Builtins the ordered-sink rule models; None = not one."""
        if not isinstance(node.func, ast.Name) or callee != node.func.id:
            return None
        name = node.func.id
        if name not in ("sorted", "set", "frozenset", "list", "tuple", "enumerate", "open"):
            return None
        vals = [self.eval(arg) for arg in node.args]
        for kw in node.keywords:
            self.eval(kw.value)
        if name == "sorted":
            return _OTHER  # the sanctioner: order is now defined
        if name in ("set", "frozenset"):
            return SymVal(kind="uset")
        if name == "open":
            return SymVal(kind="handle")
        # list()/tuple()/enumerate(): an ordered artifact of its input.
        if vals:
            self.s.note_unordered(vals[0], node.args[0], sink=name)
        return _OTHER

    # -- process boundaries ----------------------------------------------

    def _ship(self, expr: ast.expr, label: str) -> ShippedValue:
        """Symbolic description of one value crossing a boundary."""
        val = self.eval(expr)
        kind = val.kind
        if isinstance(expr, ast.Lambda):
            kind = "lambda"
        detail = val.ref or val.param or _src(expr)
        return ShippedValue(
            label=label,
            kind=kind,
            detail=detail,
            line=expr.lineno,
            col=expr.col_offset,
        )

    def _shipped_args(self, node: ast.Call, first_label: str) -> list[ShippedValue]:
        values: list[ShippedValue] = []
        for i, arg in enumerate(node.args):
            label = first_label if i == 0 else f"arg {i}"
            values.append(self._ship(arg, label))
        for kw in node.keywords:
            if kw.arg is not None:
                values.append(self._ship(kw.value, f"{kw.arg}="))
            else:
                self.eval(kw.value)
        return values

    def _process_values(self, node: ast.Call) -> list[ShippedValue]:
        """``Process(target=..., args=(...), kwargs=...)`` payloads."""
        values: list[ShippedValue] = []
        for arg in node.args:
            values.append(self._ship(arg, "arg"))
        for kw in node.keywords:
            if kw.arg == "target":
                values.append(self._ship(kw.value, "target="))
            elif kw.arg in ("args", "initargs") and isinstance(
                kw.value, ast.Tuple
            ):
                for i, elt in enumerate(kw.value.elts):
                    values.append(self._ship(elt, f"{kw.arg}[{i}]"))
            elif kw.arg is not None:
                values.append(self._ship(kw.value, f"{kw.arg}="))
            else:
                self.eval(kw.value)
        return values

    def _executor_init_values(self, node: ast.Call) -> list[ShippedValue]:
        """``initializer=``/``initargs=`` payloads of a pool constructor.

        The initializer runs once per worker to set up process-local
        state — a sanctioned pattern — so it is *not* a purity root,
        but it still has to pickle.
        """
        values: list[ShippedValue] = []
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            if kw.arg == "initializer":
                values.append(self._ship(kw.value, "initializer="))
            elif kw.arg == "initargs" and isinstance(kw.value, ast.Tuple):
                for i, elt in enumerate(kw.value.elts):
                    values.append(self._ship(elt, f"initargs[{i}]"))
            else:
                self.eval(kw.value)
        return values

    def _maybe_boundary(self, node: ast.Call, recv: SymVal) -> SymVal | None:
        """Record a boundary site for pool/pipe/cache attribute calls."""
        func = node.func
        assert isinstance(func, ast.Attribute)
        attr = func.attr
        recv_name = func.value.id if isinstance(func.value, ast.Name) else None
        desc = f"{recv_name or '<expr>'}.{attr}"
        if attr in _POOL_SHIP and (
            recv.kind == "pool" or recv_name in ("pool", "executor")
        ):
            kind = "pool-submit" if attr in ("submit", "apply_async") else "pool-map"
            self.s.record_boundary(
                kind, desc, self._shipped_args(node, "callable"), node
            )
            return _OTHER
        if attr == "Process" and (
            recv.kind == "pool" or recv_name in ("ctx", "mp", "multiprocessing")
        ):
            self.s.record_boundary(
                "process", desc, self._process_values(node), node
            )
            return _OTHER
        if (
            attr == "send"
            and recv_name is not None
            and ("conn" in recv_name or "pipe" in recv_name)
        ):
            self.s.record_boundary(
                "pipe-send", desc, self._shipped_args(node, "payload"), node
            )
            return _OTHER
        if attr == "put" and (
            recv.kind == "cache"
            or (recv_name is not None and "cache" in recv_name)
        ):
            self.s.record_boundary(
                "cache-put", desc, self._shipped_args(node, "key"), node
            )
            return _OTHER
        return None

    def _table_method(self, recv: SymVal, node: ast.Call) -> SymVal:
        added = tuple(kw.arg for kw in node.keywords if kw.arg)
        if recv.kind == "param":
            if node.func.attr == "with_columns" and added:
                self.s.note_param_added(self.fn_name, recv.param, added)
            return recv  # still schema-compatible with the param
        columns = recv.columns
        if columns is not None and node.func.attr == "with_columns":
            columns = tuple(dict.fromkeys((*columns, *added)))
        return SymVal(kind="table", columns=columns)

    # -- statement walk --------------------------------------------------

    def assign(self, target: ast.expr, value: SymVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Tuple) and value.kind == "rng":
            for elt in target.elts:
                self.assign(elt, value)


def _join_vals(*vals: SymVal) -> SymVal:
    rngs = [v for v in vals if v.kind == "rng"]
    if rngs and len(rngs) + sum(v.kind == "param" for v in vals) == len(vals):
        provs = [v.prov or UNKNOWN for v in rngs]
        # params join as GOOD (caller-checked)
        provs += [GOOD] * sum(v.kind == "param" for v in vals)
        return SymVal(kind="rng", prov=join(*provs))
    if len(vals) == 1:
        return vals[0]
    return _OTHER


def _dict_literal_keys(node: ast.Call) -> tuple[str, ...] | None:
    """Column names of a ``Table({...})``/``Table(dict literal)`` call."""
    candidates: list[ast.expr] = list(node.args[:1])
    keys: list[str] = []
    for arg in candidates:
        if not isinstance(arg, ast.Dict):
            return None
        for key in arg.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                return None
    if node.keywords:
        for kw in node.keywords:
            if kw.arg is None:
                return None
            keys.append(kw.arg)
    return tuple(dict.fromkeys(keys)) if keys else None


class _ModuleSummarizer:
    """One pass over a module AST producing its :class:`ModuleSummary`."""

    def __init__(
        self, tree: ast.Module, module: str | None, relpath: str, package: str,
        is_package: bool,
    ) -> None:
        # Imported lazily: the checkers package pulls in the engine,
        # which imports this module at its own top level.
        from .checkers._util import build_import_map

        self.tree = tree
        self.module = module
        self.relpath = relpath
        self.package = package
        self.import_map = build_import_map(tree, module, is_package)
        self.summary = ModuleSummary(module=module, relpath=relpath)
        self._constructions: list[RngConstruction] = []
        self._calls: list[CallSite] = []
        self._boundaries: list[BoundarySite] = []
        self._module_effects: list[EffectSite] = []
        self._local_funcs: set[str] = {
            n.name
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        #: Module-level bindings a function body can mutate: assigned
        #: names plus top-level functions (lru_cache memos) and classes.
        self._module_names: frozenset[str] = frozenset(
            self._local_funcs
            | {n.name for n in tree.body if isinstance(n, ast.ClassDef)}
            | _assigned_names(tree.body)
        )
        #: Module-level names bound to set/frozenset values, so function
        #: bodies iterating them see an unordered collection.
        self._module_usets: frozenset[str] = _module_set_bindings(tree.body)
        self._current: FunctionSummary | None = None
        #: Innermost enclosing *top-level* function, for call-graph
        #: attribution (nested defs/lambdas fold into their encloser).
        self._top: str | None = None

    # -- callbacks from _Scope -------------------------------------------

    def resolve_callee(self, func: ast.expr) -> str | None:
        qual = self.import_map.resolve(func)
        if qual is not None:
            return qual
        if isinstance(func, ast.Name):
            if func.id in self._local_funcs and self.module:
                return f"{self.module}.{func.id}"
            return func.id
        return None

    def resolve_name_ref(self, name: str) -> str | None:
        """Qualname a bare name *used as a value* refers to, if any."""
        if name in self._local_funcs and self.module:
            return f"{self.module}.{name}"
        return self.import_map.aliases.get(name)

    def is_module_uset(self, name: str) -> bool:
        return name in self._module_usets

    def graph_placeholder_rng(self, ref: str) -> str:
        # Call results are resolved against the graph later; locally
        # they are unknown (never reported).
        return UNKNOWN

    def note_entropy_param(self, fn_name: str | None, param: str | None) -> None:
        fn = self._current
        if fn is None or param is None or param not in fn.params:
            return
        if param not in fn.entropy_params:
            fn.entropy_params = (*fn.entropy_params, param)

    def note_param_added(
        self, fn_name: str | None, param: str | None, added: tuple[str, ...]
    ) -> None:
        fn = self._current
        if fn is None or param is None:
            return
        merged = dict.fromkeys((*fn.param_added.get(param, ()), *added))
        fn.param_added[param] = tuple(merged)

    def record_construction(self, **kwargs: object) -> None:
        self._constructions.append(RngConstruction(**kwargs))

    def record_effect(
        self, kind: str, detail: str, line: int, col: int, sink: str = ""
    ) -> None:
        site = EffectSite(kind=kind, detail=detail, line=line, col=col, sink=sink)
        fn = self._current
        if fn is not None:
            fn.effects = (*fn.effects, site)
        else:
            self._module_effects.append(site)

    def note_unordered(self, val: SymVal, expr: ast.expr, sink: str) -> None:
        """An unordered value reached an ordered sink (or might, via a
        call result the graph resolves later)."""
        if val.kind == "uset":
            self.record_effect(
                UNORDERED_ITER, _src(expr), expr.lineno, expr.col_offset, sink
            )
        elif val.kind == "ref" and val.ref:
            self.record_effect(
                UNORDERED_ITER_REF, val.ref, expr.lineno, expr.col_offset, sink
            )

    def record_boundary(
        self,
        kind: str,
        desc: str,
        values: list[ShippedValue],
        node: ast.Call,
    ) -> None:
        self._boundaries.append(
            BoundarySite(
                kind=kind,
                desc=desc,
                values=tuple(values),
                line=node.lineno,
                col=node.col_offset,
                in_function=self._top,
            )
        )

    def record_call(self, node: ast.Call, callee: str, scope: _Scope) -> None:
        args = tuple(scope.eval(a) for a in node.args)
        kwargs = tuple(
            (kw.arg, scope.eval(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        )
        self._calls.append(
            CallSite(
                callee=callee,
                line=node.lineno,
                col=node.col_offset,
                args=args,
                kwargs=kwargs,
                in_function=self._top,
            )
        )
        # Params forwarded into another call may be entropy params of
        # *that* callee; the graph closes this after indexing.
        fn = self._current
        if fn is not None:
            for val in (*args, *(v for _, v in kwargs)):
                if val.kind == "param" and val.param in fn.params:
                    fwd = dict.fromkeys(
                        (*fn.entropy_forwards.get(val.param, ()), callee)
                    )
                    fn.entropy_forwards[val.param] = tuple(fwd)

    # -- the walk ---------------------------------------------------------

    def run(self) -> ModuleSummary:
        summary = self.summary
        summary.exports = dict(self.import_map.aliases)
        prefix = self.package + "."
        internal: list[str] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == self.package or alias.name.startswith(prefix):
                        internal.append(alias.name)
            elif isinstance(node, ast.ImportFrom):
                from .checkers._util import resolve_from_module

                base = resolve_from_module(
                    node, self.module, self.relpath.endswith("__init__.py")
                )
                if base == self.package or base.startswith(prefix):
                    internal.append(base)
                    # ``from repro.x import y`` may import module y itself.
                    for alias in node.names:
                        internal.append(f"{base}.{alias.name}")
        summary.imports = tuple(dict.fromkeys(internal))

        # Module-level statements run in an anonymous scope.
        top = _Scope(self, params=(), fn_name=None)
        self._walk_body(self.tree.body, top, qual_prefix=self.module)

        summary.constructions = tuple(self._constructions)
        summary.calls = tuple(self._calls)
        summary.boundaries = tuple(self._boundaries)
        summary.module_effects = tuple(self._module_effects)
        return summary

    def _walk_body(
        self,
        body: list[ast.stmt],
        scope: _Scope,
        qual_prefix: str | None,
        depth: int = 0,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth > 0:
                    # A nested def is a local value: unpicklable if it
                    # ever crosses a process boundary.
                    scope.env[stmt.name] = SymVal(kind="localfn", ref=stmt.name)
                self._function(stmt, qual_prefix, top_level=depth == 0)
            elif isinstance(stmt, ast.ClassDef):
                if depth > 0:
                    scope.env[stmt.name] = SymVal(kind="localcls", ref=stmt.name)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._function(sub, None, top_level=False)
            else:
                self._statement(stmt, scope)

    def _statement(self, stmt: ast.stmt, scope: _Scope) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Conditionally-defined function (inside if/try): summarize
            # it in its own scope, never in the enclosing environment.
            # Inside a function it is additionally a local (unpicklable)
            # value; at module level its qualname still pickles.
            if scope.fn_name is not None:
                scope.env[stmt.name] = SymVal(kind="localfn", ref=stmt.name)
            self._function(stmt, None, top_level=False)
            return
        if isinstance(stmt, ast.ClassDef):
            if scope.fn_name is not None:
                scope.env[stmt.name] = SymVal(kind="localcls", ref=stmt.name)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._function(sub, None, top_level=False)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = scope.eval(item.context_expr)
                if item.optional_vars is not None:
                    scope.assign(item.optional_vars, val)
            for sub in stmt.body:
                self._statement(sub, scope)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = scope.eval(stmt.iter)
            if iter_val.kind in ("uset", "ref") and _ordered_loop_body(stmt.body):
                self.note_unordered(iter_val, stmt.iter, sink="for-loop")
            if isinstance(stmt.target, ast.Name):
                scope.env[stmt.target.id] = _OTHER
            for sub in (*stmt.body, *stmt.orelse):
                self._statement(sub, scope)
            return
        if isinstance(stmt, ast.Assign):
            value = scope.eval(stmt.value)
            for target in stmt.targets:
                scope.assign(target, value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            scope.assign(stmt.target, scope.eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            self._note_return(stmt, scope)
        elif isinstance(stmt, ast.Expr):
            scope.eval(stmt.value)
        else:
            # Visit nested expressions/statements (if/for/while/with/try
            # bodies) in source order with the same environment.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    scope.eval(child)
                elif isinstance(child, ast.stmt):
                    self._statement(child, scope)
                elif isinstance(child, (ast.excepthandler, ast.withitem)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._statement(sub, scope)
                        elif isinstance(sub, ast.expr):
                            scope.eval(sub)

    def _note_return(self, stmt: ast.Return, scope: _Scope) -> None:
        fn = self._current
        value = scope.eval(stmt.value)
        if fn is None:
            return
        if value.kind == "rng":
            fn.rng_return = _join_rng_return(fn.rng_return, value.prov or UNKNOWN)
        elif value.kind == "param":
            fn.rng_return = _join_rng_return(fn.rng_return, f"param:{value.param}")
        elif value.kind == "ref":
            fn.rng_return = _join_rng_return(fn.rng_return, f"ref:{value.ref}")
            fn.returns_ref = value.ref
        elif value.kind == "uset":
            fn.returns_unordered = True
        if value.kind == "table" and value.columns is not None:
            merged = dict.fromkeys((*(fn.returns_columns or ()), *value.columns))
            fn.returns_columns = tuple(merged)

    def _function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qual_prefix: str | None,
        top_level: bool,
    ) -> None:
        args = node.args
        all_args = (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        )
        params = tuple(a.arg for a in all_args)
        annotated_tables = tuple(
            a.arg for a in all_args if _annotation_mentions(a.annotation, "Table")
        )
        entropy = tuple(
            a.arg
            for a in all_args
            if _annotation_mentions(a.annotation, "Generator")
            or _annotation_mentions(a.annotation, "SeedSequence")
        )
        qualname = (
            f"{qual_prefix}.{node.name}" if qual_prefix else node.name
        )
        fn = FunctionSummary(
            qualname=qualname,
            name=node.name,
            params=params,
            defaults=len(args.defaults),
            annotated_table_params=annotated_tables,
            entropy_params=entropy,
        )
        outer = self._current
        outer_top = self._top
        self._current = fn
        if top_level:
            self._top = node.name
        scope = _Scope(self, params=params, fn_name=node.name)
        self._collect_param_accesses(node, fn)
        if top_level:
            # Effects walk the full subtree, so nested defs' writes
            # fold into their (top-level) encloser conservatively.
            self._collect_effects(node, fn)
        self._walk_body(node.body, scope, qual_prefix=None, depth=1)
        self._current = outer
        self._top = outer_top
        if top_level and self.module is not None:
            self.summary.functions[node.name] = fn
        elif outer is not None:
            # Scope-recorded effects (unordered-iter consumption) of a
            # nested def surface on the enclosing function.
            outer.effects = (*outer.effects, *fn.effects)

    def _collect_param_accesses(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, fn: FunctionSummary
    ) -> None:
        """Record ``param["col"]`` reads and Table-shaped param usage."""
        subscripted: dict[str, list[tuple[str, int, int]]] = {}
        non_table_use: set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in fn.params
                and isinstance(sub.ctx, ast.Load)
            ):
                if isinstance(sub.slice, ast.Constant) and isinstance(
                    sub.slice.value, str
                ):
                    subscripted.setdefault(sub.value.id, []).append(
                        (sub.slice.value, sub.lineno, sub.col_offset)
                    )
                else:
                    non_table_use.add(sub.value.id)
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("len", "iter", "sorted")
            ):
                continue
        fn.param_accesses = {
            p: tuple(reads) for p, reads in subscripted.items()
        }
        table_like = [
            p
            for p in fn.params
            if p in subscripted and p not in non_table_use
        ]
        fn.table_params = tuple(
            dict.fromkeys((*fn.annotated_table_params, *table_like))
        )

    def _collect_effects(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, fn: FunctionSummary
    ) -> None:
        """Syntactic effect sites of one top-level function's subtree."""
        args = node.args
        positional = (*args.posonlyargs, *args.args)
        mutable: list[str] = []
        for arg_node, default in zip(
            positional[len(positional) - len(args.defaults) :], args.defaults
        ):
            if _is_mutable_literal(default):
                mutable.append(arg_node.arg)
        for arg_node, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_literal(default):
                mutable.append(arg_node.arg)
        fn.mutable_default_params = tuple(mutable)

        global_names: set[str] = set()
        stored: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                global_names.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                stored.add(sub.id)
        shadowed = (stored | set(fn.params)) - global_names

        effects: list[EffectSite] = []
        called_params: set[str] = set()
        mutable_set = set(mutable)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                if sub.id in global_names:
                    effects.append(
                        EffectSite(
                            GLOBAL_WRITE, sub.id, sub.lineno, sub.col_offset
                        )
                    )
            elif isinstance(sub, (ast.Subscript, ast.Attribute)) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                if self.import_map.resolve(sub.value) == "os.environ":
                    effects.append(
                        EffectSite(
                            ENV_EFFECT, "os.environ", sub.lineno, sub.col_offset
                        )
                    )
                    continue
                base = _base_name(sub.value)
                if base is None:
                    continue
                if base in mutable_set:
                    effects.append(
                        EffectSite(
                            DEFAULT_MUTATION, base, sub.lineno, sub.col_offset
                        )
                    )
                elif base in self._module_names and base not in shadowed:
                    effects.append(
                        EffectSite(
                            GLOBAL_WRITE, base, sub.lineno, sub.col_offset
                        )
                    )
            elif isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Name) and func.id in fn.params:
                    called_params.add(func.id)
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    base = _base_name(func.value)
                    if base is not None:
                        if base in mutable_set:
                            effects.append(
                                EffectSite(
                                    DEFAULT_MUTATION,
                                    base,
                                    sub.lineno,
                                    sub.col_offset,
                                )
                            )
                        elif base in self._module_names and base not in shadowed:
                            effects.append(
                                EffectSite(
                                    GLOBAL_WRITE,
                                    base,
                                    sub.lineno,
                                    sub.col_offset,
                                )
                            )
                callee = self.resolve_callee(func)
                kind = _callee_effect(callee, sub)
                if kind is not None:
                    detail = callee or (
                        func.attr if isinstance(func, ast.Attribute) else ""
                    )
                    effects.append(
                        EffectSite(kind, detail, sub.lineno, sub.col_offset)
                    )
        fn.effects = (*fn.effects, *effects)
        fn.called_params = tuple(sorted(called_params))


def _assigned_names(body: list[ast.stmt]) -> set[str]:
    """Names bound by module-level assignment statements."""
    names: set[str] = set()
    for stmt in body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    elt.id for elt in target.elts if isinstance(elt, ast.Name)
                )
    return names


def _module_set_bindings(body: list[ast.stmt]) -> frozenset[str]:
    """Module-level names assigned set/frozenset literals or calls."""
    names: set[str] = set()
    for stmt in body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if value is None:
            continue
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )
        if not is_set:
            continue
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _src(expr: ast.expr) -> str:
    """Short source rendering of an expression, for messages."""
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 48 else text[:45] + "..."


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("dict", "list", "set", "defaultdict", "deque")
    )


def _base_name(node: ast.expr) -> str | None:
    """Innermost Name of a Subscript/Attribute chain (``a`` of ``a.b[c]``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _ordered_loop_body(body: list[ast.stmt]) -> bool:
    """Does the loop body produce order-sensitive output?

    Appends/writes/prints/yields make iteration order observable; pure
    accumulation (sums, max, membership) does not.
    """
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Name) and func.id == "print":
                    return True
                if isinstance(func, ast.Attribute) and func.attr in (
                    "append",
                    "extend",
                    "insert",
                    "write",
                    "writelines",
                    "add_row",
                ):
                    return True
    return False


_ENV_CALLS = frozenset({"os.putenv", "os.unsetenv", "os.environ.update"})
_FS_CALLS = frozenset(
    {
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
    }
)
_FS_ATTRS = frozenset(
    {"write_text", "write_bytes", "unlink", "mkdir", "rmdir", "touch"}
)
_PROC_CALLS = frozenset({"os.system", "os.fork", "os.kill", "os.execv"})


def _callee_effect(callee: str | None, node: ast.Call) -> str | None:
    """Env/fs/process effect of a call, by callee name (never reported
    on their own; they complete the lattice for propagation/tests)."""
    if callee in _ENV_CALLS:
        return ENV_EFFECT
    if callee in _PROC_CALLS or (callee or "").startswith("subprocess."):
        return PROC_EFFECT
    if callee in _FS_CALLS:
        return FS_EFFECT
    if callee == "open":
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        if isinstance(mode, str) and any(c in mode for c in "wax+"):
            return FS_EFFECT
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _FS_ATTRS:
        return FS_EFFECT
    return None


def _join_rng_return(current: str | None, new: str) -> str:
    """Join return provenances; concrete taint dominates param/ref."""
    if current is None or current == new:
        return new
    order = {UNSEEDED: 4, ADHOC: 3, LITERAL: 2}
    cur_rank = order.get(current, 0)
    new_rank = order.get(new, 0)
    if new_rank or cur_rank:
        return new if new_rank >= cur_rank else current
    return current  # first of several param/ref returns wins


def summarize_module(
    source: str,
    module: str | None,
    relpath: str,
    package: str,
) -> ModuleSummary:
    """Parse-free entry point used by the engine (and its worker pool)."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return ModuleSummary(
            module=module,
            relpath=relpath,
            parse_error=exc.msg or str(exc),
            parse_error_line=exc.lineno or 1,
        )
    summary = _ModuleSummarizer(
        tree,
        module,
        relpath,
        package,
        is_package=relpath.endswith("__init__.py"),
    ).run()
    from .cfg import summarize_lifecycle

    summary.lifecycle = summarize_lifecycle(
        tree, module, relpath.endswith("__init__.py")
    )
    return summary


# -- the whole-program graph --------------------------------------------------


@dataclass
class InferredSchema:
    """Input-schema inference for one (function, table-param)."""

    columns: tuple[str, ...]
    call_sites: int
    complete: bool  # every resolved call site had a known column set


class ProjectGraph:
    """Import graph + call graph + resolved dataflow facts."""

    def __init__(self, package: str, summaries: dict[str, ModuleSummary]):
        self.package = package
        #: relpath -> summary (every linted file).
        self.files = summaries
        #: dotted module name -> summary (package files only).
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries.values() if s.module
        }
        self.functions: dict[str, FunctionSummary] = {}
        for s in self.modules.values():
            for fn in s.functions.values():
                self.functions[fn.qualname] = fn
        self._closure_cache: dict[str, frozenset[str]] = {}
        self._resolve_cache: dict[str, str | None] = {}
        self._edges: dict[str, tuple[str, ...]] | None = None
        self._reach_cache: dict[
            tuple[str, ...], dict[str, tuple[str, str]]
        ] = {}
        self._close_entropy_params()
        self._schemas = self._infer_schemas()
        #: qualname -> FunctionLifecycle for every summarized function.
        self._lifecycles: dict[str, object] = {}
        for s in self.modules.values():
            if s.lifecycle is not None:
                for fl in s.lifecycle.functions:
                    self._lifecycles[f"{s.module}.{fl.name}"] = fl
        self._lifecycle_action_cache: dict[str, tuple] = {}
        self._lifecycle_incoming: dict[str, dict[str, str]] | None = None

    # -- import graph ----------------------------------------------------

    def imports_of(self, module: str) -> frozenset[str]:
        """Package-internal modules ``module`` imports (direct)."""
        summary = self.modules.get(module)
        if summary is None:
            return frozenset()
        out = set()
        for target in summary.imports:
            node = target
            # ``from repro.x import y``: record the deepest prefix that
            # is a real module (y may be a function).
            while node and node not in self.modules and "." in node:
                node = node.rsplit(".", 1)[0]
            if node in self.modules and node != module:
                out.add(node)
        return frozenset(out)

    def import_closure(self, module: str) -> frozenset[str]:
        """Transitive package-internal imports, excluding ``module``."""
        cached = self._closure_cache.get(module)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = list(self.imports_of(module))
        while stack:
            nxt = stack.pop()
            if nxt in seen:
                continue
            seen.add(nxt)
            stack.extend(self.imports_of(nxt) - seen)
        seen.discard(module)
        result = frozenset(seen)
        self._closure_cache[module] = result
        return result

    def dependents(self, module: str) -> frozenset[str]:
        """Modules whose import closure contains ``module``."""
        return frozenset(
            m for m in self.modules if m != module and module in self.import_closure(m)
        )

    # -- name resolution --------------------------------------------------

    def resolve_function(self, qualname: str | None) -> FunctionSummary | None:
        """Follow package ``__init__`` re-export chains to a function."""
        if qualname is None:
            return None
        if qualname in self._resolve_cache:
            resolved = self._resolve_cache[qualname]
            return self.functions.get(resolved) if resolved else None
        seen: set[str] = set()
        node: str | None = qualname
        while node is not None and node not in seen:
            seen.add(node)
            if node in self.functions:
                self._resolve_cache[qualname] = node
                return self.functions[node]
            if "." not in node:
                break
            mod, name = node.rsplit(".", 1)
            summary = self.modules.get(mod)
            node = summary.exports.get(name) if summary else None
        self._resolve_cache[qualname] = None
        return None

    # -- RNG dataflow ------------------------------------------------------

    def _close_entropy_params(self, rounds: int = 4) -> None:
        """Propagate entropy-param status through forwarding calls."""
        for _ in range(rounds):
            changed = False
            for fn in self.functions.values():
                for param, callees in fn.entropy_forwards.items():
                    if param in fn.entropy_params:
                        continue
                    for callee in callees:
                        target = self.resolve_function(callee)
                        if target is None:
                            continue
                        site = self._forward_position(fn, param, target)
                        if site and site in target.entropy_params:
                            fn.entropy_params = (*fn.entropy_params, param)
                            changed = True
                            break
            if not changed:
                return

    def _forward_position(
        self, fn: FunctionSummary, param: str, target: FunctionSummary
    ) -> str | None:
        """Which of ``target``'s params receives ``fn``'s ``param``."""
        module = self.modules.get(fn.qualname.rsplit(".", 1)[0])
        if module is None:
            return None
        for call in module.calls:
            resolved = self.resolve_function(call.callee)
            if resolved is not target:
                continue
            for i, val in enumerate(call.args):
                if val.kind == "param" and val.param == param:
                    if i < len(target.params):
                        return target.params[i]
            for name, val in call.kwargs:
                if val.kind == "param" and val.param == param:
                    return name
        return None

    def rng_return_prov(self, fn: FunctionSummary, depth: int = 0) -> str | None:
        """Concrete provenance of ``fn``'s returned generator, if any.

        ``param:`` returns resolve to GOOD (call-site args are checked
        separately); ``ref:`` chains are followed to a fixed depth.
        """
        ret = fn.rng_return
        if ret is None:
            return None
        if ret.startswith("param:"):
            return GOOD
        if ret.startswith("ref:"):
            if depth >= 8:
                return UNKNOWN
            target = self.resolve_function(ret[4:])
            if target is None:
                return UNKNOWN
            return self.rng_return_prov(target, depth + 1) or UNKNOWN
        return ret

    def arg_rng_prov(self, val: SymVal, depth: int = 0) -> str:
        """RNG provenance of a call-site argument value."""
        if val.kind == "param":
            return GOOD
        if val.kind == "rng":
            return val.prov or UNKNOWN
        if val.kind == "ref" and depth < 8:
            target = self.resolve_function(val.ref)
            if target is not None:
                prov = self.rng_return_prov(target, depth + 1)
                if prov is not None:
                    return prov
        return UNKNOWN

    # -- schema dataflow ---------------------------------------------------

    def arg_columns(
        self, val: SymVal, depth: int = 0
    ) -> tuple[str, ...] | None:
        """Known column set carried by a call-site argument, if any."""
        if val.kind == "table":
            return val.columns
        if val.kind == "ref" and depth < 8:
            target = self.resolve_function(val.ref)
            if target is not None:
                if target.returns_columns is not None:
                    return target.returns_columns
                if target.returns_ref is not None:
                    return self.arg_columns(
                        SymVal(kind="ref", ref=target.returns_ref), depth + 1
                    )
        return None

    def _infer_schemas(self) -> dict[tuple[str, str], InferredSchema]:
        """Union of call-site column sets per (function, table-param)."""
        acc: dict[tuple[str, str], dict[str, object]] = {}
        for summary in self.modules.values():
            for call in summary.calls:
                target = self.resolve_function(call.callee)
                if target is None or not target.table_params:
                    continue
                bound = self._bind(call, target)
                for param in target.table_params:
                    if param not in bound:
                        continue
                    key = (target.qualname, param)
                    slot = acc.setdefault(
                        key, {"columns": set(), "sites": 0, "complete": True}
                    )
                    slot["sites"] += 1
                    columns = None
                    val = bound[param]
                    if val.kind in ("table", "ref"):
                        columns = self.arg_columns(val)
                    if columns is None:
                        slot["complete"] = False
                    else:
                        slot["columns"].update(columns)
        return {
            key: InferredSchema(
                columns=tuple(sorted(slot["columns"])),
                call_sites=slot["sites"],
                complete=bool(slot["complete"]),
            )
            for key, slot in acc.items()
        }

    def _bind(
        self, call: CallSite, target: FunctionSummary
    ) -> dict[str, SymVal]:
        bound: dict[str, SymVal] = {}
        params = list(target.params)
        if params and params[0] == "self":
            params = params[1:]
        for i, val in enumerate(call.args):
            if i < len(params):
                bound[params[i]] = val
        for name, val in call.kwargs:
            if name in params:
                bound[name] = val
        return bound

    def inferred_schema(
        self, qualname: str, param: str
    ) -> InferredSchema | None:
        return self._schemas.get((qualname, param))

    def schemas_for_module(
        self, module: str
    ) -> dict[tuple[str, str], InferredSchema]:
        """Inference results for functions defined in ``module`` — the
        cross-module fact set a file's diagnostics depend on, used to
        key the incremental cache."""
        prefix = module + "."
        return {
            key: schema
            for key, schema in self._schemas.items()
            if key[0].startswith(prefix)
            and "." not in key[0][len(prefix):]
        }

    # -- effect dataflow ---------------------------------------------------

    def _call_edges(self) -> dict[str, tuple[str, ...]]:
        """Caller qualname -> sorted callee qualnames, with higher-order
        edges: when ``f`` passes function ``g`` into a param that
        ``target`` calls, ``target -> g`` is an edge too."""
        if self._edges is not None:
            return self._edges
        edges: dict[str, set[str]] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            for call in summary.calls:
                target = self.resolve_function(call.callee)
                if target is None:
                    continue
                if call.in_function is not None:
                    caller = f"{module}.{call.in_function}"
                    if caller in self.functions:
                        edges.setdefault(caller, set()).add(target.qualname)
                if target.called_params:
                    bound = self._bind(call, target)
                    for param in target.called_params:
                        val = bound.get(param)
                        if val is None or val.kind != "funcref":
                            continue
                        hof = self.resolve_function(val.ref)
                        if hof is not None:
                            edges.setdefault(target.qualname, set()).add(
                                hof.qualname
                            )
        self._edges = {
            caller: tuple(sorted(callees))
            for caller, callees in edges.items()
        }
        return self._edges

    def worker_roots(
        self, extra_roots: tuple[str, ...] = ()
    ) -> list[tuple[str, str]]:
        """(qualname, where-shipped) for every function shipped across a
        process boundary, plus configured extras."""
        roots: list[tuple[str, str]] = []
        for module in sorted(self.modules):
            summary = self.modules[module]
            for site in summary.boundaries:
                if site.kind not in ("pool-submit", "pool-map", "process"):
                    continue
                for val in site.values:
                    if val.kind != "funcref":
                        continue
                    target = self.resolve_function(val.detail)
                    if target is not None:
                        roots.append(
                            (
                                target.qualname,
                                f"{summary.relpath}:{site.line}",
                            )
                        )
        for name in extra_roots:
            target = self.resolve_function(name)
            if target is not None:
                roots.append((target.qualname, "configured worker root"))
        return sorted(set(roots))

    def worker_reachability(
        self, extra_roots: tuple[str, ...] = ()
    ) -> dict[str, tuple[str, str]]:
        """qualname -> (root qualname, shipped-at/caller description) for
        every function reachable from a worker entry point.

        Deterministic: roots and edges are visited in sorted order and
        the first (lexicographically smallest) path wins.
        """
        key = tuple(sorted(extra_roots))
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        edges = self._call_edges()
        reach: dict[str, tuple[str, str]] = {}
        queue: list[str] = []
        for qualname, where in self.worker_roots(key):
            if qualname not in reach:
                reach[qualname] = (qualname, where)
                queue.append(qualname)
        while queue:
            caller = queue.pop(0)
            root, _ = reach[caller]
            for callee in edges.get(caller, ()):
                if callee not in reach:
                    reach[callee] = (root, f"called from {caller}")
                    queue.append(callee)
        self._reach_cache[key] = reach
        return reach

    def returns_unordered(self, qualname: str | None, depth: int = 0) -> bool:
        """Does the function (transitively) return a set-like value?"""
        target = self.resolve_function(qualname)
        if target is None:
            return False
        if target.returns_unordered:
            return True
        if target.returns_ref is not None and depth < 8:
            return self.returns_unordered(target.returns_ref, depth + 1)
        return False

    def effect_facts_for_module(
        self, module: str, extra_roots: tuple[str, ...] = ()
    ) -> tuple[tuple[str, str, str], ...]:
        """Worker-reachability verdicts for ``module``'s own functions —
        the against-import-direction fact set REP103 diagnostics depend
        on (a caller edit elsewhere can make a function here reachable),
        folded into the incremental cache key."""
        prefix = module + "."
        reach = self.worker_reachability(extra_roots)
        return tuple(
            sorted(
                (qualname, root, via)
                for qualname, (root, via) in reach.items()
                if qualname.startswith(prefix)
                and "." not in qualname[len(prefix):]
            )
        )

    # -- resource-lifecycle facts (CFG layer, REP801-REP803) --------------

    def _lifecycle_qualname(self, dotted: str) -> str | None:
        """Resolve a recorded callee name to a lifecycle qualname."""
        fn = self.resolve_function(dotted)
        if fn is not None and fn.qualname in self._lifecycles:
            return fn.qualname
        if dotted in self._lifecycles:
            return dotted
        return None

    def lifecycle_actions(self, qualname: str, _stack=None):
        """Per-param lifecycle actions for ``qualname``, closed over the
        helper calls it makes (``publish_atomically`` -> ``fsync_tree``
        -> ``os.fsync``). Returns ``(params, {param: actions})``."""
        cached = self._lifecycle_action_cache.get(qualname)
        if cached is not None:
            return cached
        fl = self._lifecycles.get(qualname)
        if fl is None:
            return None
        top = _stack is None
        if _stack is None:
            _stack = set()
        if qualname in _stack:
            return (fl.params, fl.action_map())
        _stack.add(qualname)
        actions = {p: set(a) for p, a in fl.action_map().items()}
        for call in fl.calls:
            target = self._lifecycle_qualname(call.callee)
            if target is None:
                continue
            info = self.lifecycle_actions(target, _stack)
            if info is None:
                continue
            cparams, cactions = info
            for i, arg in enumerate(call.args):
                if arg.param is None or i >= len(cparams):
                    continue
                acts = cactions.get(cparams[i], frozenset())
                if not acts:
                    continue
                mine = actions.setdefault(arg.param, set())
                if arg.shape == "param":
                    mine |= acts
                elif arg.shape == "dir-of-param" and "fsyncs" in acts:
                    # callee fsyncs dirname(our param): a parent-dir sync.
                    mine.add("dirsyncs_parent")
        result = (fl.params, {p: frozenset(a) for p, a in actions.items()})
        if top:
            self._lifecycle_action_cache[qualname] = result
        return result

    def lifecycle_callee_info(self, dotted: str):
        """CFG-interpreter callee hook: ``(params, actions)`` or None."""
        target = self._lifecycle_qualname(dotted)
        if target is None:
            return None
        return self.lifecycle_actions(target)

    def _compute_lifecycle_incoming(self) -> dict[str, dict[str, str]]:
        from .cfg import meet_states

        calls_by_target: dict[str, list] = {}
        for s in self.modules.values():
            if s.lifecycle is None:
                continue
            for fl in s.lifecycle.functions:
                for call in fl.calls:
                    target = self._lifecycle_qualname(call.callee)
                    if target is not None:
                        calls_by_target.setdefault(target, []).append(call)
        incoming: dict[str, dict[str, str]] = {}
        for target, calls in calls_by_target.items():
            fl = self._lifecycles[target]
            per: dict[str, str] = {}
            for idx, pname in enumerate(fl.params):
                fact = meet_states(
                    call.args[idx].state if idx < len(call.args) else "unknown"
                    for call in calls
                )
                if fact != "unknown":
                    per[pname] = fact
            if per:
                incoming[target] = per
        return incoming

    def lifecycle_incoming_for_module(self, module: str) -> dict[str, dict[str, str]]:
        """Incoming per-param resource states (the meet over every
        resolved call site) for ``module``'s own functions."""
        if self._lifecycle_incoming is None:
            self._lifecycle_incoming = self._compute_lifecycle_incoming()
        prefix = module + "."
        out: dict[str, dict[str, str]] = {}
        for qualname, per in self._lifecycle_incoming.items():
            if qualname.startswith(prefix) and "." not in qualname[len(prefix):]:
                out[qualname[len(prefix):]] = per
        return out

    def lifecycle_facts_for_module(self, module: str) -> tuple:
        """Against-import-direction lifecycle facts for the flow
        fingerprint: a caller edit elsewhere that changes what reaches a
        function here re-keys this file's cached verdicts."""
        incoming = self.lifecycle_incoming_for_module(module)
        return tuple(
            sorted(
                (name, tuple(sorted(per.items())))
                for name, per in incoming.items()
            )
        )


def build_project_graph(
    summaries: dict[str, ModuleSummary], package: str
) -> ProjectGraph:
    """Assemble the whole-program graph from per-file summaries."""
    return ProjectGraph(package, summaries)
