"""Control-flow analysis for the durability and lifecycle rules.

This module gives repro-lint control-flow sensitivity: a structured
abstract interpreter over each function body (branches, loops,
``try/except/finally``, ``with``, early returns and raises) tracking a
resource-state lattice::

    fresh -> written -> fsynced -> published -> closed

Two products come out of one interpretation machine:

* **Summaries** (:func:`summarize_lifecycle`) — picklable per-function
  facts stored on ``ModuleSummary.lifecycle``: which params a function
  fsyncs/renames/closes (*actions*), and the resource state of every
  argument at every resolvable call site (*call states*).  The project
  graph resolves actions through local helper calls with a small
  fixpoint and meets call states into per-param *incoming* facts, which
  feed the flow fingerprint so a caller edit re-keys callee verdicts.
* **Findings** (:func:`file_report`) — the check-time interpretation
  with graph-resolved callee actions and incoming facts, producing
  REP801/REP802/REP803 events with related-location chains.

Approximations (deliberate, documented in DESIGN.md §15):

* Loops are interpreted as executing exactly once; the after-loop state
  joins the zero-iteration entry state.  This keeps walk-and-fsync
  loops from producing false "never fsynced" verdicts.
* Any statement containing a call, ``raise``, or ``assert`` may raise;
  the state *before* its effect is a potential exceptional exit.
* Joins are pessimistic for the rules: a path state is "written" if any
  branch leaves an unsynced write; a handle is open if any branch
  leaves it open; dir-fsync obligations survive a join if either side
  still owes one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# Content states for path-like values.
UNKNOWN = "unknown"
WRITTEN = "written"
FSYNCED = "fsynced"
PUBLISHED = "published"
GONE = "gone"
TEMP = "temp"  # only used as an incoming-fact value, never a state

# Handle states.
OPEN = "open"
CLOSED = "closed"
ESCAPED = "escaped"

# Callee actions (per-param).
A_FSYNCS = "fsyncs"
A_DIRSYNCS_PARENT = "dirsyncs_parent"
A_RENAMES_FROM = "renames_from"
A_RENAMES_TO = "renames_to"
A_CLOSES = "closes"

_RENAME_FNS = {"os.rename", "os.replace", "shutil.move"}
_UNLINK_FNS = {"os.unlink", "os.remove", "os.rmdir", "shutil.rmtree"}
_COPY_DST_FNS = {"shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.copytree"}
_WRITE_DST_FNS = {"numpy.save", "numpy.savez", "numpy.savez_compressed"}
_TEMP_FNS = {
    "tempfile.mkdtemp",
    "tempfile.mkstemp",
    "tempfile.mktemp",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
}
_PASSTHROUGH_FNS = {"os.fspath", "pathlib.Path", "os.path.abspath", "os.path.realpath"}
_POOL_FNS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}
_MMAP_FNS = {"mmap.mmap"}
_SUPPRESS_FNS = {"contextlib.suppress"}
_CLOSE_METHODS = {"close", "shutdown", "terminate", "release"}
_PATH_WRITE_METHODS = {"write_text", "write_bytes", "touch"}
_WRITE_OS_FLAGS = {"O_WRONLY", "O_RDWR", "O_APPEND", "O_TRUNC", "O_CREAT"}
_TEMP_NAME_HINTS = ("tmp", "temp", "partial", "scratch")


def _looks_temp_name(name: str) -> bool:
    low = name.lower()
    return any(h in low for h in _TEMP_NAME_HINTS)


def _literal_tail_is_temp(tail: str) -> bool:
    base = tail.rsplit("/", 1)[-1]
    return base.startswith(".") or ".tmp" in base or ".partial" in base


# ---------------------------------------------------------------------------
# Picklable summaries (stored on ModuleSummary.lifecycle)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleArg:
    """One argument at a recorded call site."""

    shape: str  # "param" | "dir-of-param" | "other"
    param: str | None
    state: str  # written | fsynced | temp | unknown


@dataclass(frozen=True)
class LifecycleCall:
    callee: str  # best-effort dotted name
    line: int
    args: tuple[LifecycleArg, ...] = ()


@dataclass(frozen=True)
class FunctionLifecycle:
    name: str  # "publish" or "Cls.method"
    params: tuple[str, ...] = ()
    actions: tuple[tuple[str, tuple[str, ...]], ...] = ()  # (param, actions)
    calls: tuple[LifecycleCall, ...] = ()

    def action_map(self) -> dict[str, frozenset[str]]:
        return {p: frozenset(a) for p, a in self.actions}


@dataclass(frozen=True)
class ModuleLifecycle:
    functions: tuple[FunctionLifecycle, ...] = ()


@dataclass(frozen=True)
class Finding:
    rule: str
    line: int
    col: int
    message: str
    hint: str = ""
    related: tuple[tuple[int, str], ...] = ()


def meet_states(states) -> str:
    """Meet call-site arg states into one incoming fact per param."""
    states = list(states)
    if not states or any(s == UNKNOWN for s in states):
        return UNKNOWN
    if all(s == TEMP for s in states):
        return TEMP
    if any(s == TEMP for s in states):
        return UNKNOWN
    if any(s == WRITTEN for s in states):
        return WRITTEN
    if all(s == FSYNCED for s in states):
        return FSYNCED
    return UNKNOWN


# ---------------------------------------------------------------------------
# Abstract state
# ---------------------------------------------------------------------------


class _State:
    """One abstract program state: bindings, path states, handles, debts."""

    __slots__ = ("env", "paths", "handles", "pending")

    def __init__(self, env=None, paths=None, handles=None, pending=None):
        self.env = env if env is not None else {}
        self.paths = paths if paths is not None else {}
        self.handles = handles if handles is not None else {}
        self.pending = pending if pending is not None else {}

    def copy(self) -> "_State":
        return _State(
            dict(self.env), dict(self.paths), dict(self.handles), dict(self.pending)
        )


def _join_content(a: str, b: str) -> str:
    for s in (WRITTEN, FSYNCED, PUBLISHED, GONE):
        if a == s or b == s:
            return s
    return UNKNOWN


def _join_env_value(a, b):
    if a == b:
        return a
    if a is None or b is None:
        # Bound on only one branch: keep the binding. Missing is not a
        # conflict, and dropping it would orphan handle tracking across
        # try/except acquisition patterns.
        return a if a is not None else b
    if (
        isinstance(a, tuple)
        and isinstance(b, tuple)
        and a[0] == "handle"
        and b[0] == "handle"
    ):
        return ("handle", a[1] | b[1])
    return None


def _join(a: "_State | None", b: "_State | None") -> "_State | None":
    if a is None:
        return b
    if b is None:
        return a
    env = {}
    for k in a.env.keys() | b.env.keys():
        v = _join_env_value(a.env.get(k), b.env.get(k))
        if v is not None:
            env[k] = v
    paths = {}
    for k in a.paths.keys() | b.paths.keys():
        sa = a.paths.get(k, (UNKNOWN, 0))
        sb = b.paths.get(k, (UNKNOWN, 0))
        state = _join_content(sa[0], sb[0])
        paths[k] = (state, sa[1] if sa[0] == state else sb[1])
    handles = {}
    for k in a.handles.keys() | b.handles.keys():
        ha = a.handles.get(k)
        hb = b.handles.get(k)
        if ha == ESCAPED or hb == ESCAPED:
            handles[k] = ESCAPED
        elif ha == OPEN or hb == OPEN:
            handles[k] = OPEN
        else:
            handles[k] = CLOSED
    pending = dict(a.pending)
    pending.update(b.pending)
    return _State(env, paths, handles, pending)


def _join_all(states):
    out = None
    for s in states:
        out = _join(out, s)
    return out


@dataclass
class _Resource:
    rid: int
    kind: str  # "file" | "fd" | "pool" | "mmap"
    desc: str
    line: int
    col: int
    path_key: tuple | None = None
    guarded: bool = False  # acquired directly by a with-item


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _FunctionInterp:
    """Abstractly interpret one function body."""

    def __init__(
        self,
        node,
        *,
        fn_name: str,
        module: str | None,
        import_map,
        local_defs: set[str],
        callee_info=None,
        incoming=None,
        mode: str = "summary",
    ):
        self.node = node
        self.fn_name = fn_name
        self.module = module
        self.import_map = import_map
        self.local_defs = local_defs
        self.callee_info = callee_info
        self.incoming = incoming or {}
        self.mode = mode
        self.params = tuple(
            a.arg for a in (node.args.posonlyargs + node.args.args)
        )
        self.kwonly = tuple(a.arg for a in node.args.kwonlyargs)
        self.resources: dict[int, _Resource] = {}
        self._next_rid = 0
        self.exc_frames: list[list[tuple[_State, int]]] = [[]]
        self.ret_frames: list[list[tuple[_State, int]]] = [[]]
        self.events: list[tuple[str, tuple, int]] = []  # (kind, key, line)
        self.calls_out: list[LifecycleCall] = []
        self.findings: dict[tuple, Finding] = {}
        self.renamed_srcs: set[tuple] = set()
        self.forced_temp: set[tuple] = set()
        self.writes_801: dict[tuple, tuple[int, int, str]] = {}

    # -- setup ------------------------------------------------------------

    def run(self) -> None:
        st = _State()
        skip_first = self.params[:1] in (("self",), ("cls",))
        for p in self.params + self.kwonly:
            key = ("param", p)
            st.env[p] = key
            fact = self.incoming.get(p)
            if fact == TEMP:
                self.forced_temp.add(key)
            elif fact in (WRITTEN, FSYNCED):
                st.paths[key] = (fact, self.node.lineno)
        self._skip_self = skip_first
        out = self.exec_block(self.node.body, st)
        end_line = getattr(self.node.body[-1], "end_lineno", None) or self.node.lineno
        if out is not None:
            self.ret_frames[0].append((out, end_line))
        if self.mode == "check":
            self._check_exits()
            self._finalize_801()

    # -- statement dispatch ------------------------------------------------

    def exec_block(self, stmts, st: "_State | None") -> "_State | None":
        for stmt in stmts:
            if st is None:
                break
            st = self.exec_stmt(stmt, st)
        return st

    def _may_raise(self, stmt) -> bool:
        if self._is_release_stmt(stmt):
            # ``os.close(fd)`` / ``fh.close()`` release the resource even
            # when the call itself raises (POSIX close semantics), so the
            # pre-release state is not a real exceptional exit.
            return False
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Call, ast.Raise, ast.Assert)):
                return True
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
        return False

    def _is_release_stmt(self, stmt) -> bool:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return False
        call = stmt.value
        if isinstance(call.func, ast.Attribute) and call.func.attr in _CLOSE_METHODS:
            return True
        return self._resolve(call.func) == "os.close"

    def _snapshot_exc(self, st: _State, line: int) -> None:
        self.exc_frames[-1].append((st.copy(), line))

    def exec_stmt(self, stmt, st: _State) -> "_State | None":
        simple_may_raise = isinstance(
            stmt,
            (
                ast.Expr,
                ast.Assign,
                ast.AnnAssign,
                ast.AugAssign,
                ast.Assert,
                ast.Delete,
            ),
        )
        if simple_may_raise and self._may_raise(stmt):
            self._snapshot_exc(st, stmt.lineno)

        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, st)
            return st
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, st)
            for target in stmt.targets:
                self._bind(target, value, st)
            return st
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, st)
                self._bind(stmt.target, value, st)
            return st
        if isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value, st)
            return st
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval(stmt.value, st)
                self._escape_value(value, st)
                self._escape_names(stmt.value, st)
            self.ret_frames[-1].append((st.copy(), stmt.lineno))
            return None
        if isinstance(stmt, ast.Raise):
            self._snapshot_exc(st, stmt.lineno)
            return None
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, st)
            a = self.exec_block(stmt.body, st.copy())
            b = self.exec_block(stmt.orelse, st.copy())
            return _join(a, b)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                self.eval(stmt.test, st)
            else:
                self.eval(stmt.iter, st)
                self._bind(stmt.target, None, st)
            body = self.exec_block(stmt.body, st.copy())
            out = _join(st, body)
            if stmt.orelse:
                out = self.exec_block(stmt.orelse, out)
            return out
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, st)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, st)
        if isinstance(stmt, ast.Match):
            self.eval(stmt.subject, st)
            outs = [self.exec_block(case.body, st.copy()) for case in stmt.cases]
            outs.append(st)  # no case may match
            return _join_all(o for o in outs if o is not None)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._escape_names(stmt, st)
            return st
        # Pass, Break, Continue, Import, Global, Nonlocal, Assert, Delete, ...
        return st

    # -- structured statements --------------------------------------------

    def _exec_try(self, stmt: ast.Try, st: _State) -> "_State | None":
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self.exc_frames.append([])
            self.ret_frames.append([])
        self.exc_frames.append([])
        entry = st.copy()
        body_out = self.exec_block(stmt.body, st)
        body_exc = self.exc_frames.pop()

        handler_entry = _join_all([entry] + [s for s, _ in body_exc])
        handler_outs = []
        catches_all = False
        for handler in stmt.handlers:
            if handler.type is None or self._is_broad_except(handler.type):
                catches_all = True
            if handler_entry is not None:
                h_st = handler_entry.copy()
                if handler.name:
                    h_st.env.pop(handler.name, None)
                handler_outs.append(self.exec_block(handler.body, h_st))
        if body_exc and not (stmt.handlers and catches_all):
            if not stmt.handlers:
                self.exc_frames[-1].extend((s.copy(), l) for s, l in body_exc)
            else:
                joined = _join_all(s for s, _ in body_exc)
                if joined is not None:
                    self.exc_frames[-1].append((joined, body_exc[0][1]))
        if body_out is not None and stmt.orelse:
            body_out = self.exec_block(stmt.orelse, body_out)
        out = _join_all([body_out] + handler_outs)

        if has_finally:
            inner_exc = self.exc_frames.pop()
            inner_ret = self.ret_frames.pop()
            for s, line in inner_exc:
                fin = self.exec_block(stmt.finalbody, s)
                if fin is not None:
                    self.exc_frames[-1].append((fin, line))
            for s, line in inner_ret:
                fin = self.exec_block(stmt.finalbody, s)
                if fin is not None:
                    self.ret_frames[-1].append((fin, line))
            if out is not None:
                out = self.exec_block(stmt.finalbody, out)
            elif not inner_exc and not inner_ret:
                self.exec_block(stmt.finalbody, entry.copy())
        return out

    def _is_broad_except(self, type_node) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [n for n in type_node.elts]
        else:
            names = [type_node]
        for n in names:
            if isinstance(n, ast.Name) and n.id in ("Exception", "BaseException"):
                return True
        return False

    def _exec_with(self, stmt, st: _State) -> "_State | None":
        guarded_rids: set[int] = set()
        suppresses = False
        for item in stmt.items:
            value = self.eval(item.context_expr, st, in_with=True)
            dotted = self._resolve(item.context_expr.func) if isinstance(
                item.context_expr, ast.Call
            ) else None
            if dotted in _SUPPRESS_FNS:
                suppresses = True
            if isinstance(value, tuple) and value and value[0] == "handle":
                guarded_rids |= value[1]
                for rid in value[1]:
                    self.resources[rid].guarded = True
            if item.optional_vars is not None:
                self._bind(item.optional_vars, value, st)

        def release(state: _State) -> _State:
            for rid in guarded_rids:
                if state.handles.get(rid) == OPEN:
                    state.handles[rid] = CLOSED
            return state

        self.exc_frames.append([])
        self.ret_frames.append([])
        out = self.exec_block(stmt.body, st)
        body_exc = self.exc_frames.pop()
        body_ret = self.ret_frames.pop()
        for s, line in body_ret:
            self.ret_frames[-1].append((release(s), line))
        exc_outs = []
        for s, line in body_exc:
            s = release(s)
            if suppresses:
                exc_outs.append(s)
            else:
                self.exc_frames[-1].append((s, line))
        if out is not None:
            out = release(out)
        return _join_all([out] + exc_outs)

    # -- bindings and escapes ----------------------------------------------

    def _bind(self, target, value, st: _State) -> None:
        if isinstance(target, ast.Name):
            if value is None:
                value = ("local", target.id, target.lineno)
            st.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, st)
            return
        # self.x = h / container[i] = h: ownership escapes
        self._escape_value(value, st)

    def _escape_value(self, value, st: _State) -> None:
        if isinstance(value, tuple) and value and value[0] == "handle":
            for rid in value[1]:
                st.handles[rid] = ESCAPED

    def _escape_names(self, node, st: _State) -> None:
        """Escape every handle referenced anywhere under ``node``."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                self._escape_value(st.env.get(sub.id), st)

    # -- expression evaluation ---------------------------------------------

    def _resolve(self, func) -> str | None:
        dotted = self.import_map.resolve(func) if self.import_map else None
        if dotted:
            return dotted
        if isinstance(func, ast.Name):
            if func.id in self.local_defs and self.module:
                return f"{self.module}.{func.id}"
            if func.id in ("open", "str"):
                return func.id
        return None

    def _new_resource(self, kind, desc, node, path_key=None):
        rid = self._next_rid
        self._next_rid += 1
        self.resources[rid] = _Resource(
            rid, kind, desc, node.lineno, node.col_offset, path_key
        )
        return rid

    def eval(self, node, st: _State, in_with: bool = False):
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return st.env.get(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str) and ("/" in node.value or "." in node.value or node.value):
                return ("lit", node.value)
            return None
        if isinstance(node, ast.Attribute):
            if node.attr == "parent":
                base = self.eval(node.value, st)
                if self._is_path(base):
                    return ("dir", base)
            dotted = self._dotted_text(node)
            if dotted and (dotted.startswith("self.") or dotted.startswith("cls.")):
                return ("attr", dotted)
            return None
        if isinstance(node, ast.Await):
            return self.eval(node.value, st)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, st)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, st)
            a = self.eval(node.body, st)
            return a if a is not None else self.eval(node.orelse, st)
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                out = self.eval(v, st)
                if out is not None:
                    return out
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            left = self.eval(node.left, st)
            if self._is_path(left):
                return self._join_key(left, node.right, st)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self.eval(node.left, st)
            if self._is_path(left):
                return self._join_key(left, node.right, st)
            return None
        if isinstance(node, ast.JoinedStr):
            first = node.values[0] if node.values else None
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and _literal_tail_is_temp(first.value or ".")
                and first.value.startswith(".")
            ):
                return ("temp", node.lineno)
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node, st, in_with=in_with)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if getattr(node, "value", None) is not None:
                self._escape_value(self.eval(node.value, st), st)
                self._escape_names(node.value, st)
            return None
        if isinstance(node, ast.Compare):
            self.eval(node.left, st)
            for c in node.comparators:
                self.eval(c, st)
            return None
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            self._escape_names(node, st)
            return None
        return None

    def _is_path(self, value) -> bool:
        return isinstance(value, tuple) and value and value[0] in (
            "param",
            "attr",
            "lit",
            "temp",
            "join",
            "dir",
            "local",
        )

    def _join_key(self, base, tail_node, st: _State):
        tail = "*"
        if isinstance(tail_node, ast.Constant) and isinstance(tail_node.value, str):
            tail = tail_node.value
        elif isinstance(tail_node, ast.JoinedStr):
            first = tail_node.values[0] if tail_node.values else None
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                tail = first.value + "*"
        return ("join", base, tail)

    def _dotted_text(self, node) -> str | None:
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    # -- temp-ness ---------------------------------------------------------

    def is_temp(self, key) -> bool:
        if not isinstance(key, tuple):
            return False
        if key in self.forced_temp:
            return True
        kind = key[0]
        if kind == "temp":
            return True
        if kind == "join":
            tail = key[2]
            if tail != "*" and _literal_tail_is_temp(tail):
                return True
            return self.is_temp(key[1])
        if kind == "dir":
            return self.is_temp(key[1])
        if kind in ("param", "local"):
            return _looks_temp_name(key[1])
        if kind == "attr":
            return _looks_temp_name(key[1].rsplit(".", 1)[-1])
        if kind == "lit":
            return _literal_tail_is_temp(key[1])
        return False

    def _root(self, key):
        while isinstance(key, tuple) and key[0] in ("join", "dir"):
            key = key[1]
        return key

    def _within(self, key, ancestor) -> bool:
        while isinstance(key, tuple):
            if key == ancestor:
                return True
            if key[0] in ("join", "dir"):
                key = key[1]
            else:
                return False
        return False

    def _render(self, key) -> str:
        if not isinstance(key, tuple):
            return "<?>"
        kind = key[0]
        if kind == "param":
            return key[1]
        if kind == "local":
            return key[1]
        if kind == "attr":
            return key[1]
        if kind == "lit":
            return repr(key[1])
        if kind == "temp":
            return f"<temp@{key[1]}>"
        if kind == "dir":
            return f"dirname({self._render(key[1])})"
        if kind == "join":
            tail = key[2] if key[2] != "*" else "..."
            return f"{self._render(key[1])}/{tail}"
        return "<?>"

    # -- effects -----------------------------------------------------------

    def _parent_keys(self, key):
        """Keys whose dir-fsync discharges an obligation on ``key``."""
        parents = [("dir", key)]
        if isinstance(key, tuple) and key[0] == "join":
            parents.append(key[1])
            parents.append(("dir", key[1]))
        return parents

    def _fsync_effect(self, st: _State, key, line: int) -> None:
        if not self._is_path(key):
            return
        self.events.append((A_FSYNCS, key, line))
        if key[0] == "dir":
            self.events.append((A_DIRSYNCS_PARENT, key[1], line))
        cur = st.paths.get(key)
        if cur is None or cur[0] in (UNKNOWN, WRITTEN, FSYNCED):
            st.paths[key] = (FSYNCED, line)
        for k, (state, _l) in list(st.paths.items()):
            if state == WRITTEN and self._within(k, key):
                st.paths[k] = (FSYNCED, line)
        # dir-fsync discharges rename/unlink debts inside that directory
        for dst in list(st.pending):
            if key in self._parent_keys(dst):
                del st.pending[dst]

    def _write_effect(self, st: _State, key, node, desc: str) -> None:
        if not self._is_path(key):
            return
        st.paths[key] = (WRITTEN, node.lineno)
        if (
            self.mode == "check"
            and not self.is_temp(key)
            and isinstance(self._root(key), tuple)
            and self._root(key)[0] in ("param", "attr", "lit")
            and key[0] != "dir"
        ):
            self.writes_801.setdefault(key, (node.lineno, node.col_offset, desc))

    def _rename_effect(self, st: _State, src_key, dst_key, node, via: str) -> None:
        line, col = node.lineno, node.col_offset
        if self._is_path(src_key):
            self.events.append((A_RENAMES_FROM, src_key, line))
            unsynced = [
                (k, lw)
                for k, (state, lw) in st.paths.items()
                if state == WRITTEN and self._within(k, src_key)
            ]
            if unsynced and self.mode == "check":
                related = tuple(
                    sorted((lw, f"{self._render(k)} written here, never fsynced") for k, lw in unsynced)
                )
                self._emit(
                    "REP802",
                    line,
                    col,
                    f"{via} publishes {self._render(src_key)} while its payload is "
                    "written but not fsynced on this path; a crash can publish "
                    "empty or torn content",
                    hint="fsync every payload file before the rename "
                    "(core.fsutil.publish_atomically does this)",
                    related=related,
                )
            self.renamed_srcs.add(src_key)
            for k in list(st.paths):
                if self._within(k, src_key):
                    st.paths[k] = (GONE, line)
        if self._is_path(dst_key):
            self.events.append((A_RENAMES_TO, dst_key, line))
            st.paths[dst_key] = (PUBLISHED, line)
            if not self.is_temp(dst_key):
                st.pending[dst_key] = (line, col, via)

    def _unlink_effect(self, st: _State, key, node, via: str) -> None:
        if not self._is_path(key):
            return
        st.paths[key] = (GONE, node.lineno)
        if not self.is_temp(key):
            st.pending[key] = (node.lineno, node.col_offset, via)

    def _close_rids(self, st: _State, value) -> bool:
        if isinstance(value, tuple) and value and value[0] == "handle":
            for rid in value[1]:
                if st.handles.get(rid) != ESCAPED:
                    st.handles[rid] = CLOSED
            return True
        return False

    def _emit(self, rule, line, col, message, hint="", related=()) -> None:
        key = (rule, line, col, message)
        if key not in self.findings:
            self.findings[key] = Finding(rule, line, col, message, hint, tuple(related))

    # -- calls -------------------------------------------------------------

    def _open_mode_writes(self, node) -> bool:
        mode = "r"
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = str(node.args[1].value)
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        return any(c in mode for c in "wax+")

    def _os_open_writes(self, node) -> bool:
        if len(node.args) < 2:
            return False
        for sub in ast.walk(node.args[1]):
            if isinstance(sub, ast.Attribute) and sub.attr in _WRITE_OS_FLAGS:
                return True
            if isinstance(sub, ast.Name) and sub.id in _WRITE_OS_FLAGS:
                return True
        return False

    def _eval_call(self, node: ast.Call, st: _State, in_with: bool = False):
        args = [self.eval(a, st) for a in node.args]
        for kw in node.keywords:
            self._escape_value(self.eval(kw.value, st), st)
        dotted = self._resolve(node.func)

        # --- stdlib recognizers ------------------------------------------
        if dotted == "open" or dotted == "io.open":
            key = args[0] if args else None
            writes = self._open_mode_writes(node)
            if writes and self._is_path(key):
                self._write_effect(st, key, node, "open() for writing")
            rid = self._new_resource(
                "file", f"file handle for {self._render(key)}", node, key if self._is_path(key) else None
            )
            st.handles[rid] = OPEN
            return ("handle", frozenset([rid]))
        if dotted == "os.open":
            key = args[0] if args else None
            if self._os_open_writes(node) and self._is_path(key):
                self._write_effect(st, key, node, "os.open() for writing")
            rid = self._new_resource(
                "fd", f"file descriptor for {self._render(key)}", node, key if self._is_path(key) else None
            )
            st.handles[rid] = OPEN
            return ("handle", frozenset([rid]))
        if dotted == "os.fdopen":
            fd = args[0] if args else None
            path_key = None
            if isinstance(fd, tuple) and fd and fd[0] == "handle":
                for rid in fd[1]:
                    path_key = path_key or self.resources[rid].path_key
                    st.handles[rid] = CLOSED  # ownership moves into the new object
            rid = self._new_resource(
                "file", f"file handle for {self._render(path_key)}", node, path_key
            )
            st.handles[rid] = OPEN
            return ("handle", frozenset([rid]))
        if dotted == "os.close":
            self._close_rids(st, args[0] if args else None)
            return None
        if dotted == "os.fsync":
            target = None
            if args:
                arg0 = node.args[0]
                if (
                    isinstance(arg0, ast.Call)
                    and isinstance(arg0.func, ast.Attribute)
                    and arg0.func.attr == "fileno"
                ):
                    inner = self.eval(arg0.func.value, st)
                    if isinstance(inner, tuple) and inner and inner[0] == "handle":
                        for rid in inner[1]:
                            target = target or self.resources[rid].path_key
                elif isinstance(args[0], tuple) and args[0] and args[0][0] == "handle":
                    for rid in args[0][1]:
                        target = target or self.resources[rid].path_key
                elif self._is_path(args[0]):
                    target = args[0]
            if target is not None:
                self._fsync_effect(st, target, node.lineno)
            return None
        if dotted in _RENAME_FNS and len(args) >= 2:
            self._rename_effect(st, args[0], args[1], node, dotted)
            return None
        if dotted in _UNLINK_FNS and args:
            self._unlink_effect(st, args[0], node, dotted)
            return None
        if dotted in _COPY_DST_FNS and len(args) >= 2:
            if self._is_path(args[1]):
                self._write_effect(st, args[1], node, dotted)
            return None
        if dotted in _WRITE_DST_FNS and args:
            if self._is_path(args[0]):
                self._write_effect(st, args[0], node, dotted)
            return None
        if dotted in _TEMP_FNS:
            return ("temp", node.lineno)
        if dotted in _PASSTHROUGH_FNS or dotted == "str":
            return args[0] if args and self._is_path(args[0]) else None
        if dotted == "os.path.join" and args:
            key = args[0]
            if not self._is_path(key):
                return None
            for part in node.args[1:]:
                key = self._join_key(key, part, st)
            return key
        if dotted == "os.path.dirname" and args:
            if self._is_path(args[0]):
                return ("dir", args[0])
            return None
        if dotted in _POOL_FNS:
            kind = "process pool" if "Process" in dotted or dotted.endswith("Pool") else "thread pool"
            rid = self._new_resource("pool", kind, node)
            st.handles[rid] = OPEN
            return ("handle", frozenset([rid]))
        if dotted in _MMAP_FNS:
            rid = self._new_resource("mmap", "memory map", node)
            st.handles[rid] = OPEN
            return ("handle", frozenset([rid]))

        # --- method calls on tracked values ------------------------------
        if isinstance(node.func, ast.Attribute):
            base = self.eval(node.func.value, st)
            meth = node.func.attr
            if isinstance(base, tuple) and base and base[0] == "handle":
                if meth in _CLOSE_METHODS:
                    self._close_rids(st, base)
                    for rid in base[1]:
                        pk = self.resources[rid].path_key
                        if pk is not None:
                            self.events.append((A_CLOSES, pk, node.lineno))
                return None
            if self._is_path(base):
                if meth in _PATH_WRITE_METHODS:
                    self._write_effect(st, base, node, f".{meth}()")
                    return None
                if meth in ("rename", "replace") and len(node.args) == 1:
                    self._rename_effect(st, base, args[0], node, f"Path.{meth}")
                    return None
                if meth == "unlink" or meth == "rmdir":
                    self._unlink_effect(st, base, node, f"Path.{meth}")
                    return None
                if meth == "open":
                    writes = self._open_mode_writes(
                        ast.Call(func=node.func, args=[node.func.value] + node.args, keywords=node.keywords)
                    )
                    if writes:
                        self._write_effect(st, base, node, "Path.open() for writing")
                    rid = self._new_resource(
                        "file", f"file handle for {self._render(base)}", node, base
                    )
                    st.handles[rid] = OPEN
                    return ("handle", frozenset([rid]))
                if meth in ("with_name", "with_suffix") and node.args:
                    tail_node = node.args[0]
                    tail_val = self.eval(tail_node, st)
                    if isinstance(tail_val, tuple) and tail_val[0] == "temp":
                        return tail_val
                    if isinstance(tail_node, ast.Constant) and isinstance(
                        tail_node.value, str
                    ) and _literal_tail_is_temp(tail_node.value):
                        return ("temp", node.lineno)
                    return ("join", ("dir", base), "*")
                if meth == "joinpath":
                    key = base
                    for part in node.args:
                        key = self._join_key(key, part, st)
                    return key
                if meth == "absolute" or meth == "resolve" or meth == "expanduser":
                    return base

        # --- project calls ------------------------------------------------
        return self._project_call(node, dotted, args, st)

    def _project_call(self, node: ast.Call, dotted, args, st: _State):
        arg_records = []
        for value in args:
            if self._is_path(value):
                if self.is_temp(value):
                    state = TEMP
                elif value in st.paths and st.paths[value][0] in (WRITTEN, FSYNCED):
                    state = st.paths[value][0]
                else:
                    state = UNKNOWN
                shape, param = "other", None
                if value[0] == "param":
                    shape, param = "param", value[1]
                elif value[0] == "dir" and isinstance(value[1], tuple) and value[1][0] == "param":
                    shape, param = "dir-of-param", value[1][1]
                arg_records.append(LifecycleArg(shape, param, state))
            else:
                arg_records.append(LifecycleArg("other", None, UNKNOWN))

        if self.mode == "summary":
            if dotted:
                self.calls_out.append(
                    LifecycleCall(dotted, node.lineno, tuple(arg_records))
                )
            for value in args:
                self._escape_value(value, st)
            return None

        info = self.callee_info(dotted) if (dotted and self.callee_info) else None
        if info is None:
            # Unknown callee: handles escape (conservative silence), path
            # states are left untouched.
            for value in args:
                self._escape_value(value, st)
            return None

        params, actions = info
        bound = list(zip(params, args))
        # 1. fsyncs / dirsyncs first — a well-formed publish helper fsyncs
        #    before it renames, so order the discharge the same way.
        for pname, value in bound:
            acts = actions.get(pname, frozenset())
            if A_FSYNCS in acts and self._is_path(value):
                self._fsync_effect(st, value, node.lineno)
            if A_DIRSYNCS_PARENT in acts and self._is_path(value):
                st.pending.pop(value, None)
        # 2. renames: check the caller-side protocol, then apply.
        for pname, value in bound:
            acts = actions.get(pname, frozenset())
            if A_RENAMES_FROM in acts and self._is_path(value):
                self.renamed_srcs.add(value)
                unsynced = [
                    (k, lw)
                    for k, (state, lw) in st.paths.items()
                    if state == WRITTEN and self._within(k, value)
                ]
                if unsynced and A_FSYNCS not in acts and self.mode == "check":
                    related = tuple(
                        sorted((lw, f"{self._render(k)} written here, never fsynced") for k, lw in unsynced)
                    )
                    self._emit(
                        "REP802",
                        node.lineno,
                        node.col_offset,
                        f"{dotted.rsplit('.', 1)[-1]}() renames {self._render(value)} "
                        "into place but neither this function nor the callee fsyncs "
                        "the written payload first",
                        hint="fsync the payload before publishing, or use "
                        "core.fsutil.publish_atomically",
                        related=related,
                    )
                for k in list(st.paths):
                    if self._within(k, value):
                        st.paths[k] = (GONE, node.lineno)
            if A_RENAMES_TO in acts and self._is_path(value):
                st.paths[value] = (PUBLISHED, node.lineno)
                if A_DIRSYNCS_PARENT not in acts and not self.is_temp(value):
                    st.pending[value] = (node.lineno, node.col_offset, dotted)
        # 3. closes: the callee consumes the handle.
        for pname, value in bound:
            acts = actions.get(pname, frozenset())
            if isinstance(value, tuple) and value and value[0] == "handle":
                if A_CLOSES in acts:
                    self._close_rids(st, value)
                # resolved callee without "closes": ownership stays here.
        return None

    # -- end-of-function checks (check mode) -------------------------------

    def _check_exits(self) -> None:
        normal = self.ret_frames[0]
        exceptional = self.exc_frames[0]
        pending_seen: dict[tuple, tuple] = {}
        for st, _line in normal:
            for dst, (line, col, via) in st.pending.items():
                pending_seen.setdefault((line, col), (dst, via))
        for (line, col), (dst, via) in sorted(pending_seen.items()):
            self._emit(
                "REP802",
                line,
                col,
                f"{via} changes the directory entry for {self._render(dst)} but no "
                "path to return fsyncs the parent directory, so the change can "
                "vanish after a crash",
                hint="fsync the parent directory (core.fsutil.fsync_dir / "
                "publish_atomically) before returning",
            )
        for rid in sorted(self.resources):
            res = self.resources[rid]
            if res.guarded:
                continue
            leak_line = None
            on_exc = False
            for st, line in normal:
                if st.handles.get(rid) == OPEN:
                    leak_line = line
                    break
            if leak_line is None:
                for st, line in exceptional:
                    if st.handles.get(rid) == OPEN:
                        leak_line, on_exc = line, True
                        break
            if leak_line is None:
                continue
            if on_exc:
                msg = (
                    f"{res.desc} acquired here is not released if an exception "
                    f"is raised around line {leak_line}"
                )
                hint = "wrap the resource in `with`, or release it in a finally block"
            else:
                msg = (
                    f"{res.desc} acquired here is not released on the path "
                    f"reaching line {leak_line}"
                )
                hint = "use a `with` block, or close/shutdown the resource on every exit"
            self._emit(
                "REP803",
                res.line,
                res.col,
                msg,
                hint=hint,
                related=((leak_line, "execution can leave the function here"),),
            )

    def _finalize_801(self) -> None:
        for key, (line, col, desc) in sorted(self.writes_801.items(), key=lambda i: i[1]):
            if any(self._within(key, src) or self._within(src, key) for src in self.renamed_srcs):
                continue
            self._emit(
                "REP801",
                line,
                col,
                f"{desc} writes directly to durable path {self._render(key)} "
                "without the temp+fsync+rename publish protocol",
                hint="write to a dot-prefixed temp sibling, then "
                "core.fsutil.publish_atomically(temp, dest)",
            )

    # -- summary extraction ------------------------------------------------

    def summary(self) -> FunctionLifecycle:
        actions: dict[str, set[str]] = {}
        param_keys = {("param", p): p for p in self.params + self.kwonly}
        for kind, key, _line in self.events:
            if key in param_keys:
                actions.setdefault(param_keys[key], set()).add(kind)
            elif (
                kind == A_FSYNCS
                and isinstance(key, tuple)
                and key[0] == "dir"
                and key[1] in param_keys
            ):
                actions.setdefault(param_keys[key[1]], set()).add(A_DIRSYNCS_PARENT)
        return FunctionLifecycle(
            name=self.fn_name,
            params=self.params + self.kwonly,
            actions=tuple(
                sorted((p, tuple(sorted(a))) for p, a in actions.items())
            ),
            calls=tuple(self.calls_out),
        )


# ---------------------------------------------------------------------------
# Module-level drivers
# ---------------------------------------------------------------------------


def _iter_functions(tree):
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}", sub


def _local_defs(tree) -> set[str]:
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def summarize_lifecycle(tree, module: str | None, is_package: bool) -> ModuleLifecycle:
    """Build the picklable lifecycle summary for one module."""
    from .checkers._util import build_import_map

    import_map = build_import_map(tree, module, is_package) if module else None
    local = _local_defs(tree)
    functions = []
    for name, node in _iter_functions(tree):
        interp = _FunctionInterp(
            node,
            fn_name=name,
            module=module,
            import_map=import_map,
            local_defs=local,
            mode="summary",
        )
        try:
            interp.run()
        except RecursionError:  # pragma: no cover - pathological nesting
            continue
        functions.append(interp.summary())
    return ModuleLifecycle(functions=tuple(functions))


def analyze_module(
    tree,
    module: str | None,
    is_package: bool,
    *,
    callee_info,
    incoming,
) -> tuple[Finding, ...]:
    """Check-time interpretation of every function in a module.

    ``callee_info(dotted)`` returns ``(params, {param: actions})`` for a
    project-resolvable callee or ``None``; ``incoming`` maps local
    function names to per-param incoming resource states.
    """
    from .checkers._util import build_import_map

    import_map = build_import_map(tree, module, is_package) if module else None
    local = _local_defs(tree)
    findings: list[Finding] = []
    for name, node in _iter_functions(tree):
        interp = _FunctionInterp(
            node,
            fn_name=name,
            module=module,
            import_map=import_map,
            local_defs=local,
            callee_info=callee_info,
            incoming=incoming.get(name, {}),
            mode="check",
        )
        try:
            interp.run()
        except RecursionError:  # pragma: no cover - pathological nesting
            continue
        findings.extend(interp.findings.values())
    findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    return tuple(findings)


def file_report(ctx) -> tuple[Finding, ...]:
    """Cached per-file driver shared by the REP801/802/803 checkers."""
    cached = getattr(ctx, "_lifecycle_report", None)
    if cached is not None:
        return cached
    graph = ctx.graph
    if graph is None or ctx.module is None:
        report: tuple[Finding, ...] = ()
    else:
        report = analyze_module(
            ctx.tree,
            ctx.module,
            ctx.is_package,
            callee_info=graph.lifecycle_callee_info,
            incoming=graph.lifecycle_incoming_for_module(ctx.module),
        )
    try:
        ctx._lifecycle_report = report
    except AttributeError:  # pragma: no cover - frozen context
        pass
    return report


def in_durable_scope(module: str | None, durable_roots) -> bool:
    if not module:
        return False
    for root in durable_roots:
        if module == root or module.startswith(root + "."):
            return True
    return False
