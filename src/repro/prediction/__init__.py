"""Host-load prediction (the paper's announced future work)."""

from .ar import AutoRegressive, fit_ar_coefficients
from .baselines import EWMA, LastValue, MovingAverage, Predictor
from .evaluate import PredictionScore, compare_predictors, evaluate_predictor
from .markov import MarkovLevel, transition_matrix
from .seasonal import SeasonalNaive

__all__ = [
    "AutoRegressive",
    "EWMA",
    "LastValue",
    "MarkovLevel",
    "MovingAverage",
    "PredictionScore",
    "Predictor",
    "SeasonalNaive",
    "compare_predictors",
    "evaluate_predictor",
    "fit_ar_coefficients",
    "transition_matrix",
]
