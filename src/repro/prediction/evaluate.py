"""Walk-forward evaluation of host-load predictors.

Backtests one-step-ahead forecasts over a load series, reporting MSE /
MAE, and compares predictability across systems — quantifying the
paper's claim that Google host load is harder to predict than Grid
load because of its noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .baselines import Predictor

__all__ = ["PredictionScore", "evaluate_predictor", "compare_predictors"]


@dataclass(frozen=True)
class PredictionScore:
    """Error metrics of one predictor on one series."""

    predictor: str
    mse: float
    mae: float
    num_predictions: int

    @property
    def rmse(self) -> float:
        return float(np.sqrt(self.mse))


def evaluate_predictor(
    predictor: Predictor,
    series: np.ndarray,
    name: str | None = None,
    horizon: int = 1,
) -> PredictionScore:
    """Walk-forward evaluation over the whole series.

    ``horizon`` > 1 scores the same one-step forecast against the value
    ``horizon`` samples ahead (flat multi-step extension) — the paper's
    volatile Cloud load degrades far faster with horizon than stable
    Grid load.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    series = np.asarray(series, dtype=np.float64)
    if series.size < predictor.min_history + horizon:
        raise ValueError("series too short for this predictor")
    forecasts = predictor.predict_series(series)
    if horizon > 1:
        forecasts = forecasts[: -(horizon - 1)]
        targets = series[horizon - 1 :]
    else:
        targets = series
    mask = ~np.isnan(forecasts)
    if not mask.any():
        raise ValueError("predictor produced no forecasts")
    err = forecasts[mask] - targets[mask]
    return PredictionScore(
        predictor=name or type(predictor).__name__,
        mse=float(np.mean(err**2)),
        mae=float(np.mean(np.abs(err))),
        num_predictions=int(mask.sum()),
    )


def compare_predictors(
    predictors: dict[str, Predictor],
    series: np.ndarray,
    horizon: int = 1,
) -> list[PredictionScore]:
    """Score several predictors on one series, best (lowest MSE) first."""
    scores = [
        evaluate_predictor(p, series, name, horizon=horizon)
        for name, p in predictors.items()
    ]
    return sorted(scores, key=lambda s: s.mse)
