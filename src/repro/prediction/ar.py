"""Autoregressive host-load predictor.

AR(p) fit by ordinary least squares over a sliding training window —
the classical linear model for host-load prediction (cf. Dinda's work
and the regression approach of Barnes et al. cited by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .baselines import Predictor

__all__ = ["AutoRegressive", "fit_ar_coefficients"]


def fit_ar_coefficients(series: np.ndarray, order: int) -> np.ndarray:
    """Least-squares AR coefficients ``[c, a_1..a_p]`` for a series.

    ``x_t = c + sum_i a_i * x_{t-i}``; requires at least ``2 * order +
    1`` samples so the normal equations are overdetermined.
    """
    series = np.asarray(series, dtype=np.float64)
    if order < 1:
        raise ValueError("order must be >= 1")
    if series.size < 2 * order + 1:
        raise ValueError(
            f"need at least {2 * order + 1} samples to fit AR({order})"
        )
    n = series.size - order
    design = np.empty((n, order + 1))
    design[:, 0] = 1.0
    for lag in range(1, order + 1):
        design[:, lag] = series[order - lag : order - lag + n]
    target = series[order:]
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return coeffs


@dataclass(frozen=True)
class AutoRegressive(Predictor):
    """AR(p) one-step forecaster with periodic refitting.

    The model is refit every ``refit_every`` samples on the most recent
    ``train_window`` samples, imitating an online predictor.
    """

    order: int = 4
    train_window: int = 288  # one day of 5-minute samples
    refit_every: int = 48

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.train_window < 2 * self.order + 1:
            raise ValueError("train_window too small for the AR order")
        if self.refit_every < 1:
            raise ValueError("refit_every must be >= 1")

    @property
    def min_history(self) -> int:  # type: ignore[override]
        return 2 * self.order + 1

    def predict(self, history: np.ndarray) -> float:
        history = np.asarray(history, dtype=np.float64)
        train = history[-self.train_window :]
        coeffs = fit_ar_coefficients(train, self.order)
        lags = history[-self.order :][::-1]
        return float(coeffs[0] + np.dot(coeffs[1:], lags))

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        coeffs: np.ndarray | None = None
        for i in range(self.min_history, series.size):
            if coeffs is None or (i - self.min_history) % self.refit_every == 0:
                train = series[max(0, i - self.train_window) : i]
                coeffs = fit_ar_coefficients(train, self.order)
            lags = series[i - self.order : i][::-1]
            out[i] = coeffs[0] + np.dot(coeffs[1:], lags)
        return out
