"""Baseline host-load predictors.

The paper's conclusion announces host-load prediction as future work
and argues Cloud load is harder to predict than Grid load because of
its noise. These predictors (last-value, moving average, EWMA) are the
standard baselines that claim is evaluated against in
:mod:`repro.prediction.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Predictor", "LastValue", "MovingAverage", "EWMA"]


class Predictor:
    """One-step-ahead predictor over a sampled load series.

    ``predict(history)`` returns the forecast for the next sample given
    all samples so far. ``predict_series`` runs the walk-forward loop,
    vectorized where the model allows.
    """

    #: Samples required before the first prediction.
    min_history: int = 1

    def predict(self, history: np.ndarray) -> float:
        raise NotImplementedError

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        """Forecast series[i] from series[:i] for every valid i.

        Returns an array aligned with ``series``; entries before
        ``min_history`` are NaN.
        """
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        for i in range(self.min_history, series.size):
            out[i] = self.predict(series[:i])
        return out


@dataclass(frozen=True)
class LastValue(Predictor):
    """Predict the previous sample (persistence / naive forecast)."""

    min_history: int = 1

    def predict(self, history: np.ndarray) -> float:
        return float(history[-1])

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        out[1:] = series[:-1]
        return out


@dataclass(frozen=True)
class MovingAverage(Predictor):
    """Mean of the last ``window`` samples."""

    window: int = 12

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")

    @property
    def min_history(self) -> int:  # type: ignore[override]
        return 1

    def predict(self, history: np.ndarray) -> float:
        w = min(self.window, history.size)
        return float(history[-w:].mean())

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        csum = np.concatenate(([0.0], np.cumsum(series)))
        for i in range(1, series.size):
            w = min(self.window, i)
            out[i] = (csum[i] - csum[i - w]) / w
        return out


@dataclass(frozen=True)
class EWMA(Predictor):
    """Exponentially weighted moving average with smoothing ``alpha``."""

    alpha: float = 0.3

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")

    def predict(self, history: np.ndarray) -> float:
        level = float(history[0])
        for x in history[1:]:
            level = self.alpha * float(x) + (1 - self.alpha) * level
        return level

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        if series.size < 2:
            return out
        level = series[0]
        for i in range(1, series.size):
            out[i] = level
            level = self.alpha * series[i] + (1 - self.alpha) * level
        return out
