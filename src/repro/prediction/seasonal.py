"""Seasonal (diurnal) predictor.

H. Li's Grid workload studies — the related work the paper contrasts
itself against — show Grid load has strong daily periodicity that
predictors can exploit. The seasonal-naive predictor forecasts the
value one season (default: 24 hours of 5-minute samples) ago, falling
back to the last value until a full season of history exists. On
Google's structureless host load it degrades to noise; on diurnal Grid
arrival series it shines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .baselines import Predictor

__all__ = ["SeasonalNaive"]


@dataclass(frozen=True)
class SeasonalNaive(Predictor):
    """Forecast the value exactly one season ago."""

    season: int = 288  # one day of 5-minute samples

    def __post_init__(self) -> None:
        if self.season < 1:
            raise ValueError("season must be >= 1")

    @property
    def min_history(self) -> int:  # type: ignore[override]
        return 1

    def predict(self, history: np.ndarray) -> float:
        history = np.asarray(history, dtype=np.float64)
        if history.size >= self.season:
            return float(history[-self.season])
        return float(history[-1])

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        n = series.size
        if n < 2:
            return out
        # Before one season of history: persistence.
        upto = min(self.season, n)
        out[1:upto] = series[0 : upto - 1]
        if n > self.season:
            out[self.season :] = series[: n - self.season]
        return out
