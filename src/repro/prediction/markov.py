"""Markov-chain level predictor.

Discretizes load into the paper's five usage levels and learns a
first-order transition matrix — the discrete analogue of the HMM
approach of Khan et al. cited in related work. Predicts the expected
level midpoint of the next sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.segments import DEFAULT_USAGE_LEVELS, discretize
from .baselines import Predictor

__all__ = ["MarkovLevel", "transition_matrix"]


def transition_matrix(levels: np.ndarray, n_levels: int) -> np.ndarray:
    """Row-stochastic transition matrix estimated from a level series.

    Rows with no observed transitions fall back to self-loops (the
    level persists), keeping the matrix stochastic.
    """
    levels = np.asarray(levels, dtype=np.int64)
    if levels.size and (levels.min() < 0 or levels.max() >= n_levels):
        raise ValueError("level codes out of range")
    matrix = np.zeros((n_levels, n_levels))
    if levels.size >= 2:
        np.add.at(matrix, (levels[:-1], levels[1:]), 1.0)
    row_sums = matrix.sum(axis=1, keepdims=True)
    out = np.where(row_sums > 0, matrix / np.where(row_sums == 0, 1, row_sums), 0.0)
    empty = row_sums[:, 0] == 0
    out[empty, :] = 0.0
    out[empty, np.arange(n_levels)[empty]] = 1.0
    return out


@dataclass(frozen=True)
class MarkovLevel(Predictor):
    """First-order Markov predictor on discretized usage levels."""

    edges: tuple[float, ...] = tuple(DEFAULT_USAGE_LEVELS)
    train_window: int = 288

    def __post_init__(self) -> None:
        if len(self.edges) < 3:
            raise ValueError("need at least two levels")
        if self.train_window < 2:
            raise ValueError("train_window must be >= 2")

    @property
    def min_history(self) -> int:  # type: ignore[override]
        return 2

    @property
    def _edges_arr(self) -> np.ndarray:
        return np.asarray(self.edges)

    @property
    def _midpoints(self) -> np.ndarray:
        edges = self._edges_arr
        return 0.5 * (edges[:-1] + edges[1:])

    def predict(self, history: np.ndarray) -> float:
        history = np.asarray(history, dtype=np.float64)
        edges = self._edges_arr
        train = np.clip(history[-self.train_window :], edges[0], edges[-1])
        levels = discretize(train, edges)
        n_levels = len(edges) - 1
        matrix = transition_matrix(levels, n_levels)
        current = levels[-1]
        return float(np.dot(matrix[current], self._midpoints))

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        out = np.full(series.size, np.nan)
        for i in range(self.min_history, series.size):
            out[i] = self.predict(series[:i])
        return out
