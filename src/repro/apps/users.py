"""Per-user workload analysis.

The trace model associates every job with a user ("each job corresponds
to one user", Sec. II). This module summarizes the user dimension:
how many users drive the load, how skewed the jobs-per-user
distribution is (mass-count over users), and each heavy user's
submission dynamics — inputs for per-user quota and capacity decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.fairness import jain_fairness
from ..core.masscount import MassCount, mass_count
from ..core.table import Table

__all__ = ["UserSummary", "user_summary", "top_user_share", "jobs_per_user"]


def jobs_per_user(jobs: Table) -> dict[int, int]:
    """Job count per user id."""
    users, counts = np.unique(np.asarray(jobs["user_id"]), return_counts=True)
    return {int(u): int(c) for u, c in zip(users, counts)}


def top_user_share(jobs: Table, k: int = 10) -> float:
    """Fraction of all jobs submitted by the ``k`` heaviest users."""
    if k < 1:
        raise ValueError("k must be >= 1")
    counts = np.sort(
        np.unique(np.asarray(jobs["user_id"]), return_counts=True)[1]
    )[::-1]
    return float(counts[:k].sum() / counts.sum())


@dataclass(frozen=True)
class UserSummary:
    """Cluster-wide user-dimension summary."""

    num_users: int
    jobs_per_user_mean: float
    jobs_per_user_max: int
    top10_share: float
    fairness_across_users: float
    masscount: MassCount


def user_summary(jobs: Table) -> UserSummary:
    """Summarize the user dimension of a per-job table."""
    if len(jobs) == 0:
        raise ValueError("job table is empty")
    counts = np.unique(np.asarray(jobs["user_id"]), return_counts=True)[1]
    return UserSummary(
        num_users=int(counts.size),
        jobs_per_user_mean=float(counts.mean()),
        jobs_per_user_max=int(counts.max()),
        top10_share=top_user_share(jobs, k=min(10, counts.size)),
        fairness_across_users=jain_fairness(counts.astype(np.float64)),
        masscount=mass_count(counts.astype(np.float64)),
    )
