"""Downstream applications of the characterization (Sec. I use cases)."""

from .consolidation import (
    ConsolidationReport,
    consolidation_potential,
    pack_demands,
)
from .users import UserSummary, jobs_per_user, top_user_share, user_summary

__all__ = [
    "ConsolidationReport",
    "UserSummary",
    "consolidation_potential",
    "jobs_per_user",
    "pack_demands",
    "top_user_share",
    "user_summary",
]
