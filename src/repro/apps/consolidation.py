"""Capacity planning / consolidation analysis.

The paper's introduction motivates host-load characterization with
exactly this use case: "the resource management system can proactively
shift and consolidate load via (VM) migration to improve host
utilization, using fewer machines and shutting off unneeded hosts."
This module quantifies that opportunity on measured (or simulated)
machine load series: at every sampling instant it bin-packs the
per-machine demand into as few machines as possible (first-fit
decreasing over CPU and memory jointly) and reports how much of the
fleet could be powered down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hostload.series import MachineLoadSeries

__all__ = ["ConsolidationReport", "consolidation_potential", "pack_demands"]


def pack_demands(
    cpu_demand: np.ndarray,
    mem_demand: np.ndarray,
    cpu_capacity: np.ndarray,
    mem_capacity: np.ndarray,
    headroom: float = 0.1,
) -> int:
    """Minimal machines hosting the demands (first-fit decreasing).

    Demands are packed onto the *largest* machines first with a safety
    ``headroom`` (fraction of capacity kept free for load spikes —
    the paper observes Google deliberately reserves capacity to protect
    service-level objectives). Returns the number of machines used.
    """
    if not 0 <= headroom < 1:
        raise ValueError("headroom must be in [0, 1)")
    cpu_demand = np.asarray(cpu_demand, dtype=np.float64)
    mem_demand = np.asarray(mem_demand, dtype=np.float64)
    if cpu_demand.shape != mem_demand.shape:
        raise ValueError("demand arrays must have equal shape")
    # Bins: machines sorted by capacity, biggest first.
    order = np.argsort(-(cpu_capacity + mem_capacity))
    cpu_free = (cpu_capacity * (1 - headroom))[order].copy()
    mem_free = (mem_capacity * (1 - headroom))[order].copy()

    # Items: demands sorted decreasing (FFD).
    item_order = np.argsort(-(cpu_demand + mem_demand))
    used = 0
    for i in item_order:
        c, m = cpu_demand[i], mem_demand[i]
        if c <= 0 and m <= 0:
            continue
        placed = False
        for b in range(used):
            if cpu_free[b] >= c and mem_free[b] >= m:
                cpu_free[b] -= c
                mem_free[b] -= m
                placed = True
                break
        if not placed:
            while used < len(cpu_free):
                b = used
                used += 1
                if cpu_free[b] >= c and mem_free[b] >= m:
                    cpu_free[b] -= c
                    mem_free[b] -= m
                    placed = True
                    break
            if not placed:
                # Demand exceeds every remaining machine: the item runs
                # where it already was; count one extra machine for it.
                used = min(used + 1, len(cpu_free))
    return used


@dataclass(frozen=True)
class ConsolidationReport:
    """Fleet-consolidation opportunity over the trace."""

    times: np.ndarray
    machines_needed: np.ndarray
    fleet_size: int

    @property
    def mean_needed(self) -> float:
        return float(self.machines_needed.mean())

    @property
    def peak_needed(self) -> int:
        return int(self.machines_needed.max())

    @property
    def mean_shutoff_fraction(self) -> float:
        """Average share of the fleet that could be powered down."""
        return float(1.0 - self.machines_needed.mean() / self.fleet_size)

    @property
    def always_shutoff_fraction(self) -> float:
        """Share of the fleet never needed even at the demand peak."""
        return float(1.0 - self.peak_needed / self.fleet_size)


def consolidation_potential(
    series: dict[int, MachineLoadSeries],
    headroom: float = 0.1,
    stride: int = 1,
) -> ConsolidationReport:
    """Bin-pack every ``stride``-th sample instant of a fleet's load.

    ``series`` must share a common sampling grid (the monitor's output
    does). Larger strides trade temporal resolution for speed.
    """
    if not series:
        raise ValueError("series is empty")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    ordered = [series[k] for k in sorted(series)]
    n_samples = len(ordered[0])
    for s in ordered:
        if len(s) != n_samples:
            raise ValueError("machines have unequal sample counts")
    cpu_capacity = np.asarray([s.cpu_capacity for s in ordered])
    mem_capacity = np.asarray([s.mem_capacity for s in ordered])
    cpu_matrix = np.vstack([s.cpu for s in ordered])  # (machines, time)
    mem_matrix = np.vstack([s.mem for s in ordered])

    ticks = np.arange(0, n_samples, stride)
    needed = np.empty(len(ticks), dtype=np.int64)
    for j, t in enumerate(ticks):
        needed[j] = pack_demands(
            cpu_matrix[:, t], mem_matrix[:, t], cpu_capacity, mem_capacity,
            headroom=headroom,
        )
    return ConsolidationReport(
        times=ordered[0].times[ticks],
        machines_needed=needed,
        fleet_size=len(ordered),
    )
