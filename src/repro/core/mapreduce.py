"""Deterministic map-reduce over sharded tables (spawn-based pool).

Executes a pure kernel over every shard of a
:class:`~repro.core.shard.ShardedTable` and folds the results with a
mergeable-accumulator ``merge``. Output order is the contract:

* shards are processed in shard order, and
* the reduction is the left fold ``merge(merge(r0, r1), r2) ...`` in
  shard order, regardless of ``jobs``.

With ``jobs > 1`` the shard index range is split into ``jobs``
contiguous blocks; each worker folds its own block locally (so at most
one shard per worker is materialized at a time) and the parent folds
the block results in block order. For any merge that is *exact* under
regrouping of an ordered sequence — integer count sums, ordered chunk
concatenation, max unions, boundary stitching — the parallel result is
byte-identical to the serial fold; every accumulator shipped in
``core.kernels``/``core.segments``/``core.fairness`` satisfies this.

The pool uses the **spawn** start method everywhere, so nothing is
smuggled through fork copy-on-write: the kernel and every argument
cross a real pickle boundary (repro-lint REP303), and workers touch no
module-level state (REP103). Kernels must therefore be module-level
functions taking ``(shard_table, *args)`` with picklable ``args``.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

from .shard import ShardedTable

__all__ = ["map_shards", "map_reduce", "merge_accumulators"]

Kernel = Callable[..., object]
Merge = Callable[[object, object], object]


def merge_accumulators(left: object, right: object) -> object:
    """Default merge: delegate to the accumulator's ``merge`` method."""
    merged = left.merge(right)  # type: ignore[attr-defined]
    return left if merged is None else merged


def _split_blocks(n_shards: int, jobs: int) -> list[range]:
    """Contiguous near-equal index blocks, deterministic in (n, jobs)."""
    jobs = max(1, min(jobs, n_shards))
    base, extra = divmod(n_shards, jobs)
    blocks: list[range] = []
    start = 0
    for i in range(jobs):
        size = base + (1 if i < extra else 0)
        blocks.append(range(start, start + size))
        start += size
    return blocks


def _run_kernel(
    root: str, index: int, kernel: Kernel, args: tuple
) -> object:
    """Worker entry: evaluate the kernel on one shard."""
    table = ShardedTable.open(root)
    return kernel(table.shard(index), *args)


def _fold_block(
    root: str,
    indices: Sequence[int],
    kernel: Kernel,
    args: tuple,
    merge: Merge,
) -> object:
    """Worker entry: left-fold the kernel over one contiguous block."""
    table = ShardedTable.open(root)
    acc: object = None
    for index in indices:
        result = kernel(table.shard(index), *args)
        acc = result if acc is None else merge(acc, result)
    return acc


def _spawn_pool(jobs: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=jobs, mp_context=multiprocessing.get_context("spawn")
    )


def map_shards(
    table: ShardedTable,
    kernel: Kernel,
    *,
    args: tuple = (),
    jobs: int = 1,
) -> list[object]:
    """Kernel result per shard, in shard order."""
    n = table.num_shards
    if n == 0:
        return []
    if jobs <= 1 or n == 1:
        return [kernel(shard, *args) for shard in table.iter_shards()]
    root = str(table.root)
    with _spawn_pool(min(jobs, n)) as pool:
        futures = [
            pool.submit(_run_kernel, root, i, kernel, args) for i in range(n)
        ]
        return [f.result() for f in futures]


def map_reduce(
    table: ShardedTable,
    kernel: Kernel,
    *,
    args: tuple = (),
    jobs: int = 1,
    merge: Merge = merge_accumulators,
) -> object:
    """Left fold of per-shard kernel results in shard order.

    Returns ``None`` for a table with zero shards.
    """
    n = table.num_shards
    if n == 0:
        return None
    if jobs <= 1 or n == 1:
        acc: object = None
        for shard in table.iter_shards():
            result = kernel(shard, *args)
            acc = result if acc is None else merge(acc, result)
        return acc
    blocks = _split_blocks(n, jobs)
    root = str(table.root)
    with _spawn_pool(len(blocks)) as pool:
        futures = [
            pool.submit(_fold_block, root, list(block), kernel, args, merge)
            for block in blocks
        ]
        results = [f.result() for f in futures]
    acc = results[0]
    for result in results[1:]:
        acc = merge(acc, result)
    return acc
