"""Supervised, deterministic map-reduce over sharded tables.

Executes a pure kernel over every shard of a
:class:`~repro.core.shard.ShardedTable` and folds the results with a
mergeable-accumulator ``merge``. Output order is the contract:

* shards are processed in shard order, and
* the reduction is the left fold ``merge(merge(r0, r1), r2) ...`` in
  shard order, regardless of ``jobs`` — and regardless of crashes,
  retries, stragglers, or degradation to inline execution.

With ``jobs > 1`` the shard index range is split into ``jobs``
contiguous blocks; each worker folds its own block locally (so at most
one shard per worker is materialized at a time) and the parent folds
the block results in block order. For any merge that is *exact* under
regrouping of an ordered sequence — integer count sums, ordered chunk
concatenation, max unions, boundary stitching — the parallel result is
byte-identical to the serial fold; every accumulator shipped in
``core.kernels``/``core.segments``/``core.fairness`` satisfies this.

Every block runs in its own one-shot **spawn** process with a result
pipe, supervised the same way :mod:`repro.experiments.supervisor`
supervises experiments: nothing is smuggled through fork copy-on-write
(the kernel and every argument cross a real pickle boundary,
repro-lint REP303; workers touch no module-level state, REP103), and
no wait is unbounded — the parent polls pipes and process sentinels
together, so a dead worker is detected immediately and a hung one is
killed at its per-block timeout. Failures are classified:

``crash`` / ``timeout``
    Transient. The block is retried with seeded-jitter capped
    exponential backoff (:func:`repro.core.retry.backoff_delay`), up to
    ``retries`` extra attempts, then falls back to inline execution in
    the parent. Repeated transient failures across the pool trip a
    circuit breaker (``degrade_after``) that finishes every remaining
    block inline, in order — graceful degradation to ``jobs=1``.
``integrity``
    A :class:`~repro.core.shard.ShardIntegrityError` — the table
    itself is damaged, so retrying the same bytes cannot help. The
    optional ``heal`` callback quarantines and re-derives the table
    (see ``experiments/datasets.py``), in-flight blocks are requeued
    against the healed root, and finished block results stay valid
    because re-derivation is byte-identical.
``error``
    Any other exception is deterministic under the kernel-purity
    contract; it fails fast as :class:`MapReduceError`.

Stragglers: once at least half the blocks have finished, a block
running far past the median block time (``straggler_factor``) gets a
speculative duplicate; the first result wins and the loser is killed.

Recovery counters (``mapreduce_retries``, ``mapreduce_crashes``,
``mapreduce_block_timeouts``, ``mapreduce_respawns``,
``mapreduce_stragglers``, ``mapreduce_inline``) accumulate into the
optional ``timings`` so they surface in the run's recovery footer and
``--json`` report.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from .retry import backoff_delay
from .shard import VERIFY_MODES, ShardIntegrityError, ShardedTable
from .timing import Timings

__all__ = [
    "MapReduceConfig",
    "MapReduceError",
    "map_reduce",
    "map_shards",
    "merge_accumulators",
]

Kernel = Callable[..., object]
Merge = Callable[[object, object], object]
#: ``inject(root, block_index, attempt)`` — fault-injection hook run in
#: the worker before the block; ``heal(root, message) -> new_root|None``
#: — parent-side recovery from shard corruption.
Inject = Callable[[str, int, int], None]
Heal = Callable[[str, str], str | None]


class MapReduceError(RuntimeError):
    """A worker raised a permanent (non-transient) exception."""


@dataclass(frozen=True)
class MapReduceConfig:
    """Fault-tolerance policy for one supervised map-reduce pass."""

    #: Per-block wall-clock budget; a worker past it is killed and the
    #: attempt classified ``timeout``. ``None`` disables.
    timeout: float | None = None
    #: Extra attempts per block for transient failures before the block
    #: falls back to inline execution in the parent.
    retries: int = 2
    #: First-retry backoff, doubling per attempt up to ``backoff_cap``.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    #: Digest-verification mode workers open the table with.
    verify: str = "lazy"
    #: Transient failures across the whole pass that trip the circuit
    #: breaker: every remaining block then runs inline, in order.
    degrade_after: int = 4
    #: Most ``heal`` round-trips allowed before the integrity error is
    #: raised to the caller (guards against re-corrupting storage).
    max_heals: int = 2
    #: A running block slower than ``straggler_factor`` x the median
    #: finished-block time (and ``straggler_floor`` seconds) gets a
    #: speculative duplicate. ``None`` disables speculation.
    straggler_factor: float | None = 4.0
    straggler_floor: float = 1.0
    #: Supervision loop granularity (result/deadline polling).
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be > 0")
        if self.max_heals < 0:
            raise ValueError("max_heals must be >= 0")
        if self.verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {self.verify!r}; available: "
                f"{VERIFY_MODES}"
            )


def _now() -> float:
    """Scheduling clock for block timeouts/backoff (observability only).

    Never feeds results — the supervisor only decides *when* to run
    work whose *content* is fixed by the shard bytes and the kernel.
    """
    return time.monotonic()  # reprolint: disable=REP501


def merge_accumulators(left: object, right: object) -> object:
    """Default merge: delegate to the accumulator's ``merge`` method."""
    merged = left.merge(right)  # type: ignore[attr-defined]
    return left if merged is None else merged


def _split_blocks(n_shards: int, jobs: int) -> list[range]:
    """Contiguous near-equal index blocks, deterministic in (n, jobs)."""
    jobs = max(1, min(jobs, n_shards))
    base, extra = divmod(n_shards, jobs)
    blocks: list[range] = []
    start = 0
    for i in range(jobs):
        size = base + (1 if i < extra else 0)
        blocks.append(range(start, start + size))
        start += size
    return blocks


def _evaluate_block(
    table: ShardedTable,
    indices: Sequence[int],
    kernel: Kernel,
    args: tuple,
    fold: bool,
    merge: Merge,
) -> object:
    """Left-fold (or collect) the kernel over one contiguous block."""
    if fold:
        acc: object = None
        for index in indices:
            result = kernel(table.shard(index), *args)
            acc = result if acc is None else merge(acc, result)
        return acc
    return [kernel(table.shard(index), *args) for index in indices]


def _block_main(
    conn,
    root: str,
    verify: str,
    block_index: int,
    indices: list[int],
    kernel: Kernel,
    args: tuple,
    fold: bool,
    merge: Merge,
    inject: Inject | None,
    attempt: int,
) -> None:
    """Worker entry: evaluate one block, send one classified message."""
    try:
        try:
            if inject is not None:
                inject(root, block_index, attempt)
            table = ShardedTable.open(root, verify=verify)
            payload = _evaluate_block(table, indices, kernel, args, fold, merge)
            conn.send(("ok", payload))
        except ShardIntegrityError as exc:
            conn.send(("integrity", _format_error(exc)))
        except Exception as exc:
            conn.send(("error", _format_error(exc)))
    finally:
        conn.close()


def _format_error(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


@dataclass
class _Pending:
    block: int
    attempt: int
    eligible_at: float


@dataclass
class _Running:
    block: int
    attempt: int
    process: object
    conn: object
    started: float
    kill_at: float | None


class _HealState:
    """Current table root plus the heal budget, shared across blocks."""

    __slots__ = ("root", "heals")

    def __init__(self, root: str) -> None:
        self.root = root
        self.heals = 0

    def heal(
        self,
        heal: Heal | None,
        message: str,
        config: MapReduceConfig,
        timings: Timings | None,
    ) -> None:
        """Re-derive the table or re-raise; updates ``self.root``."""
        self.heals += 1
        if heal is None or self.heals > config.max_heals:
            raise ShardIntegrityError(message, root=self.root)
        new_root = heal(self.root, message)
        if not new_root:
            raise ShardIntegrityError(message, root=self.root)
        self.root = str(new_root)


def _count(timings: Timings | None, name: str, n: int = 1) -> None:
    if timings is not None and n:
        timings.count(name, n)


def _run_block_inline(
    state: _HealState,
    indices: Sequence[int],
    kernel: Kernel,
    args: tuple,
    fold: bool,
    merge: Merge,
    config: MapReduceConfig,
    heal: Heal | None,
    timings: Timings | None,
    table: ShardedTable | None = None,
) -> object:
    """Evaluate one block in-process, healing shard corruption."""
    while True:
        try:
            if table is None:
                table = ShardedTable.open(state.root, verify=config.verify)
            return _evaluate_block(table, indices, kernel, args, fold, merge)
        except ShardIntegrityError as exc:
            table = None
            state.heal(heal, _format_error(exc), config, timings)


def _terminate(worker: _Running) -> None:
    process = worker.process
    if process.is_alive():
        process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)
    try:
        worker.conn.close()
    except OSError:
        pass


def _supervise(
    state: _HealState,
    blocks: list[list[int]],
    kernel: Kernel,
    args: tuple,
    fold: bool,
    merge: Merge,
    jobs: int,
    config: MapReduceConfig,
    inject: Inject | None,
    heal: Heal | None,
    timings: Timings | None,
) -> list[object]:
    """Run every block under supervision; results in block order."""
    ctx = multiprocessing.get_context("spawn")
    n = len(blocks)
    completed: dict[int, object] = {}
    durations: list[float] = []
    pending: list[_Pending] = [_Pending(i, 1, 0.0) for i in range(n)]
    running: list[_Running] = []
    transient = 0

    def launch(item: _Pending) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_block_main,
            args=(
                child_conn,
                state.root,
                config.verify,
                item.block,
                list(blocks[item.block]),
                kernel,
                args,
                fold,
                merge,
                inject,
                item.attempt,
            ),
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            # A failed spawn must not leak the pipe: close both ends
            # before propagating, or the parent accumulates dead fds
            # across respawn storms.
            parent_conn.close()
            raise
        finally:
            child_conn.close()
        now = _now()
        kill_at = now + config.timeout if config.timeout else None
        running.append(
            _Running(item.block, item.attempt, process, parent_conn, now, kill_at)
        )
        if item.attempt > 1:
            _count(timings, "mapreduce_respawns")

    def has_sibling(worker: _Running) -> bool:
        return any(
            w.block == worker.block and w is not worker for w in running
        )

    def is_queued(block: int) -> bool:
        return any(p.block == block for p in pending)

    def run_inline(block: int) -> None:
        completed[block] = _run_block_inline(
            state, blocks[block], kernel, args, fold, merge, config, heal,
            timings,
        )
        _count(timings, "mapreduce_inline")

    def fail_transient(worker: _Running, kind: str) -> None:
        nonlocal transient
        transient += 1
        _count(
            timings,
            "mapreduce_block_timeouts"
            if kind == "timeout"
            else "mapreduce_crashes",
        )
        if worker.block in completed or has_sibling(worker):
            return  # a speculative sibling already covers this block
        if worker.attempt <= config.retries:
            _count(timings, "mapreduce_retries")
            delay = backoff_delay(
                config.seed,
                f"block:{worker.block}",
                worker.attempt,
                base=config.backoff_base,
                cap=config.backoff_cap,
            )
            pending.append(
                _Pending(worker.block, worker.attempt + 1, _now() + delay)
            )
        else:
            run_inline(worker.block)

    def handle_integrity(worker: _Running, message: str) -> None:
        # The table bytes are damaged: heal (quarantine + re-derive),
        # then restart every in-flight block against the new root.
        # Finished block payloads stay valid — re-derivation is
        # byte-identical — so only unfinished work is requeued.
        try:
            state.heal(heal, message, config, timings)
        except ShardIntegrityError:
            for other in list(running):
                _terminate(other)
            running.clear()
            raise
        restart = [worker] + list(running)
        for other in list(running):
            _terminate(other)
        running.clear()
        for other in restart:
            if other.block not in completed and not is_queued(other.block):
                pending.append(_Pending(other.block, other.attempt + 1, 0.0))

    def fail_permanent(message: str) -> None:
        for other in list(running):
            _terminate(other)
        running.clear()
        raise MapReduceError(message)

    try:
        while len(completed) < n:
            if transient >= config.degrade_after:
                # Circuit breaker: the pool machinery itself is failing
                # repeatedly; finish everything inline, in order.
                for worker in list(running):
                    _terminate(worker)
                running.clear()
                pending.clear()
                for block in range(n):
                    if block not in completed:
                        run_inline(block)
                break
            now = _now()
            pending.sort(key=lambda p: (p.eligible_at, p.block))
            while (
                pending
                and len(running) < jobs
                and pending[0].eligible_at <= now
            ):
                launch(pending.pop(0))
            if (
                config.straggler_factor is not None
                and len(durations) >= max(1, n // 2)
                and len(running) < jobs
                and not pending
            ):
                median = sorted(durations)[len(durations) // 2]
                threshold = max(
                    config.straggler_floor, config.straggler_factor * median
                )
                for worker in list(running):
                    if len(running) >= jobs:
                        break
                    if has_sibling(worker):
                        continue
                    if now - worker.started > threshold:
                        _count(timings, "mapreduce_stragglers")
                        launch(_Pending(worker.block, worker.attempt + 1, now))
            if not running:
                if pending:
                    wake = min(p.eligible_at for p in pending)
                    delay = min(max(0.0, wake - now), config.backoff_cap)
                    if delay:
                        time.sleep(delay)
                    continue
                break  # nothing running or queued; loop exits via count
            waitables = [w.process.sentinel for w in running]
            deadline = now + config.poll_interval
            for worker in running:
                if worker.kill_at is not None:
                    deadline = min(deadline, worker.kill_at)
            multiprocessing.connection.wait(
                waitables, timeout=max(0.0, deadline - _now())
            )
            now = _now()
            for worker in list(running):
                if worker not in running:
                    continue
                if worker.conn.poll():
                    running.remove(worker)
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        _terminate(worker)
                        fail_transient(worker, "crash")
                        continue
                    _terminate(worker)
                    status, payload = message
                    if status == "ok":
                        if worker.block not in completed:
                            completed[worker.block] = payload
                            durations.append(now - worker.started)
                        for sibling in list(running):
                            if sibling.block == worker.block:
                                _terminate(sibling)
                                running.remove(sibling)
                    elif status == "integrity":
                        handle_integrity(worker, payload)
                    else:
                        fail_permanent(payload)
                elif not worker.process.is_alive():
                    running.remove(worker)
                    _terminate(worker)
                    fail_transient(worker, "crash")
                elif worker.kill_at is not None and now >= worker.kill_at:
                    running.remove(worker)
                    _terminate(worker)
                    fail_transient(worker, "timeout")
    finally:
        for worker in list(running):
            _terminate(worker)
        running.clear()
    return [completed[block] for block in range(n)]


def _run_blocks(
    table: ShardedTable,
    blocks: list[list[int]],
    kernel: Kernel,
    args: tuple,
    fold: bool,
    merge: Merge,
    jobs: int,
    config: MapReduceConfig,
    inject: Inject | None,
    heal: Heal | None,
    timings: Timings | None,
) -> list[object]:
    state = _HealState(str(table.root))
    if jobs <= 1 or len(blocks) <= 1:
        results = []
        reuse: ShardedTable | None = table
        for block in blocks:
            results.append(
                _run_block_inline(
                    state, block, kernel, args, fold, merge, config, heal,
                    timings, table=reuse,
                )
            )
            reuse = None if state.heals else table
        return results
    return _supervise(
        state, blocks, kernel, args, fold, merge, jobs, config, inject, heal,
        timings,
    )


def map_shards(
    table: ShardedTable,
    kernel: Kernel,
    *,
    args: tuple = (),
    jobs: int = 1,
    config: MapReduceConfig | None = None,
    inject: Inject | None = None,
    heal: Heal | None = None,
    timings: Timings | None = None,
) -> list[object]:
    """Kernel result per shard, in shard order."""
    n = table.num_shards
    if n == 0:
        return []
    config = config or MapReduceConfig()
    blocks = [list(block) for block in _split_blocks(n, jobs)]
    results = _run_blocks(
        table, blocks, kernel, args, False, merge_accumulators, jobs, config,
        inject, heal, timings,
    )
    return [item for block_result in results for item in block_result]


def map_reduce(
    table: ShardedTable,
    kernel: Kernel,
    *,
    args: tuple = (),
    jobs: int = 1,
    merge: Merge = merge_accumulators,
    config: MapReduceConfig | None = None,
    inject: Inject | None = None,
    heal: Heal | None = None,
    timings: Timings | None = None,
) -> object:
    """Left fold of per-shard kernel results in shard order.

    Returns ``None`` for a table with zero shards.
    """
    n = table.num_shards
    if n == 0:
        return None
    config = config or MapReduceConfig()
    blocks = [list(block) for block in _split_blocks(n, jobs)]
    results = _run_blocks(
        table, blocks, kernel, args, True, merge, jobs, config, inject, heal,
        timings,
    )
    acc = results[0]
    for result in results[1:]:
        acc = merge(acc, result)
    return acc
