"""ASCII table rendering for the experiment harness output.

Every benchmark prints the rows/series the paper's table or figure
reports; this module keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_kv", "format_number"]


def format_number(value: object, precision: int = 4) -> str:
    """Compact numeric formatting: ints plain, floats trimmed."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[format_number(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: dict[str, object], title: str | None = None) -> str:
    """Render key/value pairs, one per line."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(k) for k in pairs), default=0)
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {format_number(value)}")
    return "\n".join(lines)
