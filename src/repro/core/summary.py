"""Small summary-statistics helpers shared by experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SampleSummary", "summarize", "fraction_below", "fraction_between"]


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-style summary of a 1-D sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarize(sample: np.ndarray) -> SampleSummary:
    """Summary statistics of a non-empty sample."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("sample must be non-empty")
    return SampleSummary(
        count=int(sample.size),
        mean=float(sample.mean()),
        std=float(sample.std()),
        minimum=float(sample.min()),
        median=float(np.median(sample)),
        maximum=float(sample.max()),
    )


def fraction_below(sample: np.ndarray, threshold: float) -> float:
    """Fraction of the sample strictly below a threshold."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("sample must be non-empty")
    return float(np.count_nonzero(sample < threshold) / sample.size)


def fraction_between(sample: np.ndarray, low: float, high: float) -> float:
    """Fraction of the sample in ``[low, high)``."""
    if high <= low:
        raise ValueError("high must exceed low")
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("sample must be non-empty")
    return float(np.count_nonzero((sample >= low) & (sample < high)) / sample.size)
