"""Mass-count disparity analysis (Feitelson), used in Figs. 4, 9, 11, 12.

The *count* distribution is the plain empirical CDF — how many items are
smaller than a given size. The *mass* distribution weights each item by
its size — which fraction of the total mass belongs to items smaller
than a given size (Eqs. (1) and (2) of the paper). Two summary indices
compare them:

* **joint ratio** — the generalized Pareto/80-20 point: the unique size
  ``x*`` where ``Fc(x*) + Fm(x*) = 1``. A joint ratio of ``X/Y`` means
  X% of the items account for Y% of the mass and vice versa.
* **mm-distance** — the horizontal distance between the medians of the
  two curves, ``|Fm^{-1}(0.5) - Fc^{-1}(0.5)|``; larger distances mean
  the mass is concentrated in relatively fewer, larger items.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MassCount", "mass_count", "joint_ratio_label"]


@dataclass(frozen=True)
class MassCount:
    """Mass-count disparity summary of a non-negative sample.

    Attributes
    ----------
    values:
        Sorted sample values (the common x-axis of both curves).
    count_cdf:
        ``Fc`` evaluated at ``values``.
    mass_cdf:
        ``Fm`` evaluated at ``values``.
    joint_ratio:
        The pair ``(X, Y)`` in percent with ``X + Y = 100``: X% of the
        items hold Y% of the mass. ``X <= 50`` by construction.
    mm_distance:
        ``|median(mass) - median(count)|`` in data units.
    count_median:
        ``Fc^{-1}(0.5)``.
    mass_median:
        ``Fm^{-1}(0.5)``.
    """

    values: np.ndarray
    count_cdf: np.ndarray
    mass_cdf: np.ndarray
    joint_ratio: tuple[float, float]
    mm_distance: float
    count_median: float
    mass_median: float

    def mm_distance_relative(self, scale: float | None = None) -> float:
        """mm-distance as a fraction of ``scale`` (default: value range).

        Figs. 11-12 of the paper report the mm-distance of usage
        percentages as a percentage of the usage range; passing the
        appropriate scale reproduces that convention.
        """
        if scale is None:
            scale = float(self.values[-1] - self.values[0]) or 1.0
        return self.mm_distance / scale


def mass_count(sample: np.ndarray) -> MassCount:
    """Compute the mass-count disparity of a non-negative sample."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("sample must be non-empty")
    if np.any(~np.isfinite(sample)) or np.any(sample < 0):
        raise ValueError("sample must be finite and non-negative")
    total = sample.sum()
    if total <= 0:
        raise ValueError("sample must have positive total mass")

    values = np.sort(sample)
    n = values.size
    count_cdf = np.arange(1, n + 1, dtype=np.float64) / n
    mass_cdf = np.cumsum(values) / total

    count_median = _inverse(values, count_cdf, 0.5)
    mass_median = _inverse(values, mass_cdf, 0.5)

    # Joint ratio: first index where Fc + Fm >= 1. At that point,
    # (1 - Fc) of the items (the largest) hold (1 - Fm) of the mass.
    s = count_cdf + mass_cdf
    idx = int(np.searchsorted(s, 1.0, side="left"))
    idx = min(idx, n - 1)
    big_items = 1.0 - count_cdf[idx]
    # Enforce the X/Y with X+Y=100 convention via the average of the two
    # complementary estimates (they differ only by discretization).
    x_pct = 100.0 * 0.5 * (big_items + mass_cdf[idx])
    joint = (x_pct, 100.0 - x_pct)

    return MassCount(
        values=values,
        count_cdf=count_cdf,
        mass_cdf=mass_cdf,
        joint_ratio=joint,
        mm_distance=abs(mass_median - count_median),
        count_median=count_median,
        mass_median=mass_median,
    )


def _inverse(values: np.ndarray, cdf: np.ndarray, q: float) -> float:
    """Smallest value whose CDF reaches q."""
    idx = int(np.searchsorted(cdf, q, side="left"))
    idx = min(idx, len(values) - 1)
    return float(values[idx])


def joint_ratio_label(mc: MassCount) -> str:
    """Render the joint ratio like the paper: e.g. ``'6/94'``."""
    x, y = mc.joint_ratio
    return f"{x:.0f}/{y:.0f}"
