"""Crash-safe filesystem publication helpers.

Durable on-disk state in this project follows one protocol, borrowed
from the ALICE crash-consistency literature:

1. write the payload to a dot-prefixed temporary path in the same
   filesystem as the destination,
2. ``fsync`` every payload file (and, for directory payloads, every
   directory) so the *content* is durable,
3. ``os.rename`` the temporary path onto the destination so the switch
   is atomic,
4. ``fsync`` the destination's parent directory so the *name* is
   durable — without this the rename itself can vanish after a power
   cut even though the syscall succeeded.

:func:`publish_atomically` packages steps 2–4; callers only write the
temp payload.  The repro-lint flow rules REP801/REP802 statically
enforce that durable modules either follow the protocol inline or call
these helpers.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

__all__ = [
    "fsync_file",
    "fsync_dir",
    "fsync_tree",
    "publish_atomically",
    "remove_durable",
]


def fsync_file(path: str | os.PathLike) -> None:
    """Flush a file's content to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | os.PathLike) -> None:
    """Flush a directory's entry list to stable storage.

    Needed after any rename/unlink/create inside ``path``: file fsync
    makes content durable, but only a directory fsync makes the *name*
    referring to that content durable.
    """
    flags = os.O_RDONLY
    if hasattr(os, "O_DIRECTORY"):
        flags |= os.O_DIRECTORY
    fd = os.open(path, flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_tree(root: str | os.PathLike) -> None:
    """Flush a file, or every file and directory under a directory."""
    root = Path(root)
    if not root.is_dir():
        fsync_file(root)
        return
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            fsync_file(os.path.join(dirpath, name))
        fsync_dir(dirpath)


def publish_atomically(
    src: str | os.PathLike,
    dst: str | os.PathLike,
    *,
    payload_synced: bool = False,
) -> None:
    """Atomically publish ``src`` at ``dst`` with full crash durability.

    Fsyncs the payload (unless the caller already did and passes
    ``payload_synced=True``), renames ``src`` onto ``dst``, then fsyncs
    ``dst``'s parent directory — and ``src``'s parent too when it
    differs, so the disappearance of the old name is equally durable.

    Raises whatever ``os.rename`` raises (notably ``OSError`` when a
    concurrent publisher won the race on a non-empty directory target);
    in that case nothing has been renamed and ``src`` is untouched.
    """
    if not payload_synced:
        fsync_tree(src)
    src = os.fspath(src)
    dst = os.fspath(dst)
    os.rename(src, dst)
    dst_parent = os.path.dirname(dst) or "."
    src_parent = os.path.dirname(src) or "."
    fsync_dir(dst_parent)
    if not os.path.samestat(os.stat(dst_parent), os.stat(src_parent)):
        fsync_dir(src_parent)


def remove_durable(path: str | os.PathLike) -> None:
    """Remove a durable file or directory tree, then fsync its parent.

    The parent-directory fsync makes the removal itself crash-durable;
    without it a "deleted" entry (an evicted cache slot, a quarantined
    shard) can resurrect after a power cut.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        shutil.rmtree(path)
    else:
        os.unlink(path)
    fsync_dir(os.path.dirname(path) or ".")
