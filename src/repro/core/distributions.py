"""Distribution toolkit for workload synthesis.

Provides the heavy-tailed building blocks trace models need — bounded
Pareto, truncated lognormal, hyperexponential and weighted mixtures —
all drawing from an injected :class:`numpy.random.Generator` so every
synthetic trace is reproducible from its seed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Distribution",
    "Exponential",
    "Uniform",
    "LogNormal",
    "BoundedPareto",
    "HyperExponential",
    "Mixture",
    "Deterministic",
]


class Distribution:
    """Interface: a sampleable, positive-valued distribution."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean (used by calibration tests)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("value must be non-negative")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given mean."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low < self.high:
            raise ValueError("require 0 <= low < high")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Lognormal parameterized by its *median* and log-space sigma.

    Optionally truncated to ``[low, high]`` by resampling (the mass cut
    off must stay small for the analytic mean to remain a good guide).
    """

    median: float
    sigma: float
    low: float = 0.0
    high: float = np.inf

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")
        if not 0 <= self.low < self.high:
            raise ValueError("require 0 <= low < high")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        mu = np.log(self.median)
        out = rng.lognormal(mu, self.sigma, size)
        bad = (out < self.low) | (out > self.high)
        # Resample the out-of-range draws (vectorized rejection).
        while np.any(bad):
            out[bad] = rng.lognormal(mu, self.sigma, int(bad.sum()))
            bad = (out < self.low) | (out > self.high)
        return out

    def mean(self) -> float:
        # Untruncated analytic mean; truncation is assumed mild.
        return float(self.median * np.exp(self.sigma**2 / 2))


@dataclass(frozen=True)
class BoundedPareto(Distribution):
    """Pareto truncated to ``[low, high]`` via inverse-CDF sampling.

    ``alpha < 1`` gives the very heavy tails that dominate the mean —
    the regime of Google's long-running service tasks.
    """

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < self.low < self.high:
            raise ValueError("require 0 < low < high")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size)
        la, ha = self.low**self.alpha, self.high**self.alpha
        # Inverse CDF of the bounded Pareto.
        return (la / (1.0 - u * (1.0 - la / ha))) ** (1.0 / self.alpha)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.low, self.high
        norm = 1.0 - (lo / hi) ** a
        if abs(a - 1.0) < 1e-12:
            return float(lo * np.log(hi / lo) / norm)
        return float(
            (a / (1.0 - a)) * lo**a * (hi ** (1.0 - a) - lo ** (1.0 - a)) / norm
        )


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Mixture of exponentials — a classic high-variance workload model."""

    means: tuple[float, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.means) != len(self.weights) or not self.means:
            raise ValueError("means and weights must be equal-length, non-empty")
        if any(m <= 0 for m in self.means):
            raise ValueError("all means must be positive")
        if any(w < 0 for w in self.weights) or abs(sum(self.weights) - 1) > 1e-9:
            raise ValueError("weights must be non-negative and sum to 1")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choice = rng.choice(len(self.means), size=size, p=self.weights)
        out = rng.exponential(1.0, size)
        return out * np.asarray(self.means)[choice]

    def mean(self) -> float:
        return float(np.dot(self.means, self.weights))


class Mixture(Distribution):
    """Weighted mixture of arbitrary component distributions."""

    def __init__(
        self, components: Sequence[Distribution], weights: Sequence[float]
    ) -> None:
        if len(components) != len(weights) or not components:
            raise ValueError("components and weights must be equal-length, non-empty")
        weights_arr = np.asarray(weights, dtype=np.float64)
        if np.any(weights_arr < 0) or abs(weights_arr.sum() - 1) > 1e-9:
            raise ValueError("weights must be non-negative and sum to 1")
        self.components = tuple(components)
        self.weights = weights_arr

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choice = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size)
        for i, comp in enumerate(self.components):
            mask = choice == i
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(rng, count)
        return out

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )
