"""Noise and correlation measures for host-load series (Fig. 13).

The paper quantifies how "noisy" a host-load signal is by smoothing it
with a mean filter and measuring the residual, and contrasts temporal
structure with the lag-1 autocorrelation. Google's CPU load shows ~20x
the noise of AuverGrid's and essentially zero autocorrelation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mean_filter", "noise_series", "noise_stats", "autocorrelation"]


def mean_filter(signal: np.ndarray, window: int = 12) -> np.ndarray:
    """Centered moving-average filter with edge truncation.

    ``window`` is the number of samples averaged (12 five-minute samples
    = one hour). Edges average over the available part of the window,
    so the output has the same length as the input.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    if signal.size == 0:
        return signal.copy()
    kernel = np.ones(window)
    sums = np.convolve(signal, kernel, mode="same")
    counts = np.convolve(np.ones_like(signal), kernel, mode="same")
    return sums / counts


def noise_series(signal: np.ndarray, window: int = 12) -> np.ndarray:
    """Absolute residual between a signal and its mean-filtered version."""
    signal = np.asarray(signal, dtype=np.float64)
    return np.abs(signal - mean_filter(signal, window))


def noise_stats(signal: np.ndarray, window: int = 12) -> dict[str, float]:
    """Min/mean/max of the mean-filter residual, as reported in Sec. IV.B.

    The paper's per-system numbers (e.g. AuverGrid mean 0.0011 vs Google
    mean 0.028) are the statistics of this residual across the trace.
    """
    resid = noise_series(signal, window)
    if resid.size == 0:
        raise ValueError("signal must be non-empty")
    return {
        "min": float(resid.min()),
        "mean": float(resid.mean()),
        "max": float(resid.max()),
    }


def autocorrelation(signal: np.ndarray, lag: int = 1) -> float:
    """Sample autocorrelation of a series at the given lag.

    Returns 0 for (near-)constant signals, where the coefficient is
    undefined.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if signal.size <= lag:
        raise ValueError("signal shorter than lag")
    x = signal - signal.mean()
    denom = np.dot(x, x)
    if denom <= 1e-300:
        return 0.0
    num = np.dot(x[:-lag], x[lag:])
    return float(num / denom)
