"""Partitioned, out-of-core columnar tables (memory-mapped shards).

A :class:`ShardedTable` is the out-of-core counterpart of
:class:`repro.core.table.Table`: one directory holding a JSON manifest
plus numbered shard directories, each shard storing one bare ``.npy``
file per column. Bare ``.npy`` (not ``.npz``) is load-bearing —
``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
members of a zip archive, and the whole point of the format is that a
reader touches only the pages of the one shard it is scanning.

Construction goes through :class:`ShardWriter`, which follows the disk
cache's atomicity discipline (build under a temp sibling, publish with
one ``os.rename``) so a crashed spill never leaves a half-written table
where a reader could find it. Shard boundaries are a pure function of
the row stream and ``shard_rows`` — feeding the writer 1-row appends or
million-row appends produces byte-identical shards — so cache keys may
fingerprint ``shard_rows`` alone, not the producer's chunking.

Two partitioning modes:

* **row mode** (default): every shard holds exactly ``shard_rows`` rows
  except the last.
* **group-aligned mode** (``group_by=column``): boundaries never split a
  run of equal key values. Shards pack whole runs greedily up to
  ``shard_rows`` (a single oversized run gets a shard to itself). This
  keeps per-machine series contiguous within one shard so per-machine
  kernels need no cross-shard state.

Readers (:meth:`ShardedTable.shard`, :meth:`ShardedTable.iter_shards`,
:meth:`ShardedTable.map_columns`) materialize at most one shard of
mmap-backed columns at a time.
"""

from __future__ import annotations

import json
import os
import shutil
from collections.abc import Callable, Iterator, Mapping, Sequence
from pathlib import Path

import numpy as np

from .table import Table

__all__ = ["ShardWriter", "ShardedTable", "write_table"]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}"


def _check_schema(schema: Mapping[str, np.dtype]) -> dict[str, np.dtype]:
    if not schema:
        raise ValueError("schema must name at least one column")
    checked: dict[str, np.dtype] = {}
    for name, dtype in schema.items():
        if not name or "/" in name or os.sep in name or name != name.strip():
            raise ValueError(f"column name {name!r} is not filesystem-safe")
        checked[name] = np.dtype(dtype)
    return checked


class ShardWriter:
    """Spill a stream of row chunks into a new sharded table.

    Use as a context manager; the table appears at ``dest`` only when
    the ``with`` block exits cleanly. On error the temp build directory
    is removed and ``dest`` is never created.
    """

    def __init__(
        self,
        dest: str | Path,
        schema: Mapping[str, np.dtype],
        shard_rows: int,
        *,
        group_by: str | None = None,
    ) -> None:
        if shard_rows <= 0:
            raise ValueError(f"shard_rows must be positive, got {shard_rows}")
        self._dest = Path(dest)
        if self._dest.exists():
            raise FileExistsError(f"destination already exists: {self._dest}")
        self._schema = _check_schema(schema)
        if group_by is not None and group_by not in self._schema:
            raise ValueError(f"group_by column {group_by!r} not in schema")
        self._shard_rows = int(shard_rows)
        self._group_by = group_by
        self._tmp = self._dest.with_name(
            f".{self._dest.name}.tmp-{os.getpid()}"
        )
        self._buffer: dict[str, list[np.ndarray]] = {
            name: [] for name in self._schema
        }
        self._buffered = 0
        self._shard_counts: list[int] = []
        self._closed = False
        self._started = False

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- writing -----------------------------------------------------------

    def append(self, chunk: Table | Mapping[str, np.ndarray]) -> None:
        """Append one chunk of rows (any size, including zero)."""
        if self._closed:
            raise RuntimeError("writer is closed")
        columns = chunk.columns() if isinstance(chunk, Table) else dict(chunk)
        if set(columns) != set(self._schema):
            raise ValueError(
                f"chunk columns {sorted(columns)} do not match schema "
                f"{sorted(self._schema)}"
            )
        arrays: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, dtype in self._schema.items():
            arr = np.asarray(columns[name]).astype(dtype, copy=False)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise ValueError("chunk columns have unequal lengths")
            arrays[name] = arr
        if not length:
            return
        for name, arr in arrays.items():
            self._buffer[name].append(arr)
        self._buffered += length
        self._drain(final=False)

    def close(self) -> "ShardedTable":
        """Flush remaining rows, write the manifest, publish atomically."""
        if self._closed:
            return ShardedTable.open(self._dest)
        self._drain(final=True)
        if self._buffered:
            self._emit(self._buffered)
        self._ensure_tmp()
        manifest = {
            "version": _FORMAT_VERSION,
            "schema": {
                name: dtype.str for name, dtype in self._schema.items()
            },
            "shard_rows": self._shard_rows,
            "group_by": self._group_by,
            "shards": self._shard_counts,
            "total_rows": int(sum(self._shard_counts)),
        }
        manifest_path = self._tmp / _MANIFEST
        manifest_path.write_text(json.dumps(manifest, indent=1))
        os.rename(self._tmp, self._dest)
        self._closed = True
        return ShardedTable.open(self._dest)

    def abort(self) -> None:
        """Discard everything written so far; ``dest`` is untouched."""
        self._closed = True
        self._buffer = {name: [] for name in self._schema}
        self._buffered = 0
        if self._tmp.exists():
            shutil.rmtree(self._tmp, ignore_errors=True)

    # -- internals ---------------------------------------------------------

    def _ensure_tmp(self) -> None:
        if not self._started:
            self._tmp.mkdir(parents=True, exist_ok=False)
            self._started = True

    def _drain(self, *, final: bool) -> None:
        """Emit every shard whose boundary is already determined.

        In row mode a shard is determined once ``shard_rows`` rows are
        buffered. In group-aligned mode the greedy cut at run boundary
        ``<= shard_rows`` is only final once more than ``shard_rows``
        rows are buffered (or at close): until then a later run could
        still join the shard.
        """
        if self._group_by is None:
            while self._buffered >= self._shard_rows:
                self._emit(self._shard_rows)
            return
        while self._buffered > self._shard_rows or (
            final and self._buffered > 0
        ):
            cut = self._group_cut(final=final)
            if cut == 0:
                break
            self._emit(cut)

    def _group_cut(self, *, final: bool) -> int:
        """Largest run boundary ``<= shard_rows`` from the buffer start.

        Falls back to the first run boundary when the leading run alone
        exceeds ``shard_rows``. Returns 0 when the boundary cannot be
        determined yet (everything buffered may share one run that is
        still growing).
        """
        keys = np.concatenate(self._buffer[self._group_by])
        change = np.flatnonzero(keys[1:] != keys[:-1]) + 1
        if change.size == 0:
            # One run so far. Only close() may cut inside a run's
            # potential continuation.
            return self._buffered if final else 0
        eligible = change[change <= self._shard_rows]
        if eligible.size:
            cut = int(eligible[-1])
            if final and self._buffered <= self._shard_rows:
                return self._buffered
            return cut
        # Leading run longer than shard_rows: it gets its own shard,
        # but only once we have seen its end (the first boundary).
        return int(change[0])

    def _emit(self, n_rows: int) -> None:
        self._ensure_tmp()
        shard_dir = self._tmp / _shard_name(len(self._shard_counts))
        shard_dir.mkdir()
        for name, dtype in self._schema.items():
            parts: list[np.ndarray] = []
            taken = 0
            chunks = self._buffer[name]
            while taken < n_rows:
                head = chunks[0]
                need = n_rows - taken
                if head.size <= need:
                    parts.append(chunks.pop(0))
                    taken += head.size
                else:
                    parts.append(head[:need])
                    chunks[0] = head[need:]
                    taken += need
            column = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
            np.save(shard_dir / f"{name}.npy", np.ascontiguousarray(column))
        self._buffered -= n_rows
        self._shard_counts.append(int(n_rows))


class ShardedTable:
    """Read-only view over a published shard directory."""

    __slots__ = ("_root", "_schema", "_counts", "_shard_rows", "_group_by")

    def __init__(
        self,
        root: Path,
        schema: dict[str, np.dtype],
        counts: list[int],
        shard_rows: int,
        group_by: str | None,
    ) -> None:
        self._root = root
        self._schema = schema
        self._counts = counts
        self._shard_rows = shard_rows
        self._group_by = group_by

    @classmethod
    def open(cls, root: str | Path) -> "ShardedTable":
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no shard manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard format version {version!r} at {root}"
            )
        schema = {
            name: np.dtype(spec) for name, spec in manifest["schema"].items()
        }
        raw_counts = manifest["shards"]
        return cls(
            root=root,
            schema=schema,
            counts=[int(n) for n in raw_counts],
            shard_rows=int(manifest["shard_rows"]),
            group_by=manifest.get("group_by"),
        )

    # -- metadata ----------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    @property
    def schema(self) -> dict[str, np.dtype]:
        return dict(self._schema)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._schema)

    @property
    def num_shards(self) -> int:
        return len(self._counts)

    @property
    def num_rows(self) -> int:
        return sum(self._counts)

    @property
    def shard_rows(self) -> int:
        return self._shard_rows

    @property
    def group_by(self) -> str | None:
        return self._group_by

    @property
    def shard_counts(self) -> tuple[int, ...]:
        return tuple(self._counts)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        cols = ", ".join(f"{k}:{v}" for k, v in self._schema.items())
        return (
            f"ShardedTable(rows={self.num_rows}, shards={self.num_shards}, "
            f"columns=[{cols}])"
        )

    # -- shard access ------------------------------------------------------

    def shard(self, index: int, columns: Sequence[str] | None = None) -> Table:
        """One shard as a Table of memory-mapped columns.

        Column data is paged in lazily by the OS; slicing or reducing a
        column touches only that column's pages.
        """
        if not 0 <= index < len(self._counts):
            raise IndexError(
                f"shard index {index} out of range [0, {len(self._counts)})"
            )
        names = self._select(columns)
        shard_dir = self._root / _shard_name(index)
        return Table(
            {
                name: np.load(shard_dir / f"{name}.npy", mmap_mode="r")
                for name in names
            }
        )

    def iter_shards(
        self, columns: Sequence[str] | None = None
    ) -> Iterator[Table]:
        """Yield each shard in order; one shard live at a time."""
        for index in range(len(self._counts)):
            yield self.shard(index, columns)

    def map_columns(
        self,
        fn: Callable[[Table], object],
        columns: Sequence[str] | None = None,
    ) -> Iterator[object]:
        """Apply ``fn`` to each shard lazily, yielding the results."""
        for shard in self.iter_shards(columns):
            yield fn(shard)

    def to_table(self, columns: Sequence[str] | None = None) -> Table:
        """Materialize the whole table in memory (concat of all shards)."""
        names = self._select(columns)
        if not self._counts:
            return Table(
                {
                    name: np.empty(0, dtype=self._schema[name])
                    for name in names
                }
            )
        parts = [self.shard(i, names) for i in range(len(self._counts))]
        return Table(
            {
                name: np.concatenate([part[name] for part in parts])
                for name in names
            }
        )

    def _select(self, columns: Sequence[str] | None) -> tuple[str, ...]:
        if columns is None:
            return tuple(self._schema)
        unknown = set(columns) - set(self._schema)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        return tuple(columns)


def write_table(
    table: Table,
    dest: str | Path,
    shard_rows: int,
    *,
    group_by: str | None = None,
) -> ShardedTable:
    """Spill an in-memory Table to a new sharded table in one call."""
    schema = {name: table[name].dtype for name in table.column_names}
    with ShardWriter(dest, schema, shard_rows, group_by=group_by) as writer:
        writer.append(table)
    return ShardedTable.open(dest)
