"""Partitioned, out-of-core columnar tables (memory-mapped shards).

A :class:`ShardedTable` is the out-of-core counterpart of
:class:`repro.core.table.Table`: one directory holding a JSON manifest
plus numbered shard directories, each shard storing one bare ``.npy``
file per column. Bare ``.npy`` (not ``.npz``) is load-bearing —
``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
members of a zip archive, and the whole point of the format is that a
reader touches only the pages of the one shard it is scanning.

Construction goes through :class:`ShardWriter`, which follows the disk
cache's atomicity discipline (build under a temp sibling, publish with
one ``os.rename``) so a crashed spill never leaves a half-written table
where a reader could find it. Shard boundaries are a pure function of
the row stream and ``shard_rows`` — feeding the writer 1-row appends or
million-row appends produces byte-identical shards — so cache keys may
fingerprint ``shard_rows`` alone, not the producer's chunking.

Two partitioning modes:

* **row mode** (default): every shard holds exactly ``shard_rows`` rows
  except the last.
* **group-aligned mode** (``group_by=column``): boundaries never split a
  run of equal key values. Shards pack whole runs greedily up to
  ``shard_rows`` (a single oversized run gets a shard to itself). This
  keeps per-machine series contiguous within one shard so per-machine
  kernels need no cross-shard state.

Integrity and crash safety (format version 2):

* The manifest records a **sha256 digest per column file** alongside
  the per-shard row counts. :meth:`ShardedTable.open` always validates
  structure (every shard directory and column file present, on-disk row
  counts matching the manifest) and, per the ``verify`` mode, checks
  digests eagerly (``"full"``), on first read of each column
  (``"lazy"``, the default), or never (``"none"``). Any mismatch
  raises :class:`ShardIntegrityError` — a
  :class:`~repro.core.diskcache.CacheCorruptionError` subtype, so cache
  consumers classify it as transient corruption and quarantine/rebuild.
  Version-1 manifests (no digests) still open; digest checks are
  skipped for them.
* A **resumable** writer (``resume=True``) builds under a deterministic
  ``.{name}.partial`` sibling and journals every completed shard
  (rows + digests, fsync'd) to ``journal.jsonl`` before moving on. A
  writer re-created after a crash adopts the journaled prefix whose
  digests still verify — a torn final shard is detected and dropped —
  and skips exactly that many rows of the re-fed stream, so the
  finished table is byte-identical to an uninterrupted spill.

Readers (:meth:`ShardedTable.shard`, :meth:`ShardedTable.iter_shards`,
:meth:`ShardedTable.map_columns`) materialize at most one shard of
mmap-backed columns at a time.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from collections.abc import Callable, Iterator, Mapping, Sequence
from pathlib import Path

import numpy as np

from .diskcache import CacheCorruptionError
from .fsutil import fsync_dir, publish_atomically, remove_durable
from .table import Table

__all__ = [
    "ShardIntegrityError",
    "ShardWriter",
    "ShardedTable",
    "VERIFY_MODES",
    "write_table",
]

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_LOCK = ".lock"
_FORMAT_VERSION = 2
#: Manifest versions this reader understands. Version 1 predates
#: integrity digests; its tables open with digest checks disabled.
_READABLE_VERSIONS = (1, 2)

#: Digest-verification policies for :meth:`ShardedTable.open`.
VERIFY_MODES = ("none", "lazy", "full")


class ShardIntegrityError(CacheCorruptionError):
    """A shard file is missing, truncated, or fails its digest.

    Subclasses :class:`~repro.core.diskcache.CacheCorruptionError` so
    supervised executors classify it as transient data corruption: the
    owning table can be quarantined and re-derived from its upstream
    builder, exactly like a corrupt disk-cache entry.
    """

    def __init__(
        self,
        message: str,
        *,
        root: str | Path | None = None,
        shard: int | None = None,
        column: str | None = None,
    ) -> None:
        super().__init__(message)
        self.root = str(root) if root is not None else None
        self.shard = shard
        self.column = column


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}"


def _check_schema(schema: Mapping[str, np.dtype]) -> dict[str, np.dtype]:
    if not schema:
        raise ValueError("schema must name at least one column")
    checked: dict[str, np.dtype] = {}
    for name, dtype in schema.items():
        if not name or "/" in name or os.sep in name or name != name.strip():
            raise ValueError(f"column name {name!r} is not filesystem-safe")
        checked[name] = np.dtype(dtype)
    return checked


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _npy_rows(path: Path) -> int:
    """Row count from a bare ``.npy`` header without loading the data."""
    with open(path, "rb") as fh:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, _, _ = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, _, _ = np.lib.format.read_array_header_2_0(fh)
        else:
            raise ValueError(f"unsupported .npy version {version}")
    if len(shape) != 1:
        raise ValueError(f"column array must be 1-D, got shape {shape}")
    return int(shape[0])


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ShardWriter:
    """Spill a stream of row chunks into a new sharded table.

    Use as a context manager; the table appears at ``dest`` only when
    the ``with`` block exits cleanly.

    With ``resume=False`` (the default) the build directory is private
    to this process and an error discards it — ``dest`` is never
    created. With ``resume=True`` the build directory is the
    deterministic sibling ``.{name}.partial``: a writer re-created
    after a crash (or an aborted attempt) adopts every journaled shard
    that still verifies and skips that many rows of the re-fed stream,
    so only the unfinished suffix is written again. ``on_event``
    (``fn(event, shard_index, resumed_shards)``) observes
    ``"column-written"`` (first column of a shard on disk) and
    ``"shard-committed"`` (shard journaled durable) — the hook points
    fault injection and crash tests key on.
    """

    def __init__(
        self,
        dest: str | Path,
        schema: Mapping[str, np.dtype],
        shard_rows: int,
        *,
        group_by: str | None = None,
        resume: bool = False,
        on_event: Callable[[str, int, int], None] | None = None,
    ) -> None:
        if shard_rows <= 0:
            raise ValueError(f"shard_rows must be positive, got {shard_rows}")
        self._dest = Path(dest)
        if self._dest.exists():
            raise FileExistsError(f"destination already exists: {self._dest}")
        self._schema = _check_schema(schema)
        if group_by is not None and group_by not in self._schema:
            raise ValueError(f"group_by column {group_by!r} not in schema")
        self._shard_rows = int(shard_rows)
        self._group_by = group_by
        self._on_event = on_event
        self._buffer: dict[str, list[np.ndarray]] = {
            name: [] for name in self._schema
        }
        self._buffered = 0
        self._shard_counts: list[int] = []
        self._digests: list[dict[str, str]] = []
        self._closed = False
        self._started = False
        self._skip_rows = 0
        self._resumed_shards = 0
        self._resumable = bool(resume)
        if self._resumable:
            self._tmp = self._dest.with_name(f".{self._dest.name}.partial")
            if not self._claim_partial():
                # Another live writer owns the partial dir; fall back to
                # a private non-resumable build so neither corrupts it.
                self._resumable = False
                self._tmp = self._dest.with_name(
                    f".{self._dest.name}.tmp-{os.getpid()}"
                )
        else:
            self._tmp = self._dest.with_name(
                f".{self._dest.name}.tmp-{os.getpid()}"
            )

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- resume bookkeeping ------------------------------------------------

    @property
    def resumed_shards(self) -> int:
        """Shards adopted from a prior interrupted spill (0 if fresh)."""
        return self._resumed_shards

    def _claim_partial(self) -> bool:
        """Take ownership of the deterministic partial dir (lock file).

        Returns False when another live process holds the lock. A lock
        left by a dead process is stale and is replaced.
        """
        self._tmp.mkdir(parents=True, exist_ok=True)
        lock = self._tmp / _LOCK
        for _ in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._lock_alive(lock):
                    return False
                try:
                    lock.unlink()
                except OSError:
                    return False
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            self._started = True
            self._adopt_partial()
            return True
        return False

    @staticmethod
    def _lock_alive(lock: Path) -> bool:
        try:
            pid = int(lock.read_text().strip())
        except (OSError, ValueError):
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        return True

    def _adopt_partial(self) -> None:
        """Keep the verified journaled prefix of an interrupted spill.

        Anything after the last shard whose journal digests still match
        the files on disk — a torn final shard, an unjournaled shard
        directory, a corrupted column — is dropped and rewritten.
        """
        journal = self._tmp / _JOURNAL
        entries = self._read_journal(journal)
        kept: list[tuple[int, dict[str, str]]] = []
        for index, (rows, digests) in enumerate(entries):
            if self._shard_verifies(index, rows, digests):
                kept.append((rows, digests))
            else:
                break
        # Drop every shard dir past the verified prefix (torn shards,
        # shards journaled but later corrupted, unjournaled leftovers).
        for path in self._tmp.iterdir():
            if not path.name.startswith("shard-"):
                continue
            try:
                index = int(path.name.split("-", 1)[1])
            except ValueError:
                index = -1
            if index < 0 or index >= len(kept):
                try:
                    remove_durable(path)
                except OSError:
                    # Durable removal failed; a resurrected torn shard
                    # fails verification and is dropped again on the
                    # next adoption, so best-effort is safe here.
                    shutil.rmtree(path, ignore_errors=True)  # reprolint: disable=REP802
        stale_manifest = self._tmp / _MANIFEST
        if stale_manifest.exists():
            stale_manifest.unlink()
        self._shard_counts = [rows for rows, _ in kept]
        self._digests = [digests for _, digests in kept]
        self._skip_rows = int(sum(self._shard_counts))
        self._resumed_shards = len(kept)
        self._write_journal_header(truncate_to=kept)

    def _read_journal(
        self, journal: Path
    ) -> list[tuple[int, dict[str, str]]]:
        """Journaled (rows, digests) per shard; [] on any mismatch."""
        if not journal.is_file():
            return []
        try:
            lines = journal.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return []
        expected = {
            "format": _FORMAT_VERSION,
            "schema": {n: d.str for n, d in self._schema.items()},
            "shard_rows": self._shard_rows,
            "group_by": self._group_by,
        }
        if header != expected:
            return []
        entries: list[tuple[int, dict[str, str]]] = []
        for index, line in enumerate(lines[1:]):
            try:
                entry = json.loads(line)
                rows = int(entry["rows"])
                digests = dict(entry["digests"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                break
            if entry.get("shard") != index or rows <= 0:
                break
            if set(digests) != set(self._schema):
                break
            # The journal is written sort_keys; restore schema order so an
            # adopted prefix serializes into the manifest byte-identically
            # to an uninterrupted spill.
            entries.append((rows, {n: digests[n] for n in self._schema}))
        return entries

    def _shard_verifies(
        self, index: int, rows: int, digests: dict[str, str]
    ) -> bool:
        shard_dir = self._tmp / _shard_name(index)
        for name in self._schema:
            path = shard_dir / f"{name}.npy"
            try:
                if _npy_rows(path) != rows:
                    return False
                if _file_sha256(path) != digests[name]:
                    return False
            except (OSError, ValueError, KeyError):
                return False
        return True

    def _write_journal_header(
        self, truncate_to: list[tuple[int, dict[str, str]]] | None = None
    ) -> None:
        """(Re)write the journal: header line plus the kept entries."""
        journal = self._tmp / _JOURNAL
        header = {
            "format": _FORMAT_VERSION,
            "schema": {n: d.str for n, d in self._schema.items()},
            "shard_rows": self._shard_rows,
            "group_by": self._group_by,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for index, (rows, digests) in enumerate(truncate_to or []):
            lines.append(
                json.dumps(
                    {"shard": index, "rows": rows, "digests": digests},
                    sort_keys=True,
                )
            )
        tmp = journal.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        publish_atomically(tmp, journal, payload_synced=True)

    def _journal_shard(self, index: int, rows: int, digests: dict[str, str]) -> None:
        journal = self._tmp / _JOURNAL
        line = json.dumps(
            {"shard": index, "rows": rows, "digests": digests},
            sort_keys=True,
        )
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- writing -----------------------------------------------------------

    def append(self, chunk: Table | Mapping[str, np.ndarray]) -> None:
        """Append one chunk of rows (any size, including zero).

        A resumed writer silently discards the leading rows already
        covered by adopted shards; callers re-feed the identical stream
        from the start and only the unfinished suffix reaches disk.
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        columns = chunk.columns() if isinstance(chunk, Table) else dict(chunk)
        if set(columns) != set(self._schema):
            raise ValueError(
                f"chunk columns {sorted(columns)} do not match schema "
                f"{sorted(self._schema)}"
            )
        arrays: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, dtype in self._schema.items():
            arr = np.asarray(columns[name]).astype(dtype, copy=False)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise ValueError("chunk columns have unequal lengths")
            arrays[name] = arr
        if not length:
            return
        if self._skip_rows:
            take = min(self._skip_rows, length)
            self._skip_rows -= take
            if take == length:
                return
            arrays = {name: arr[take:] for name, arr in arrays.items()}
            length -= take
        for name, arr in arrays.items():
            self._buffer[name].append(arr)
        self._buffered += length
        self._drain(final=False)

    def close(self) -> "ShardedTable":
        """Flush remaining rows, write the manifest, publish atomically."""
        if self._closed:
            return ShardedTable.open(self._dest)
        if self._skip_rows:
            # Adoption failed mid-validation: release ownership before
            # raising so a later writer (or a human) can claim the
            # partial dir; the journaled shards themselves stay durable.
            lock = self._tmp / _LOCK
            try:
                lock.unlink()
            except OSError:
                pass
            raise ShardIntegrityError(
                f"resumed spill ended {self._skip_rows} rows short of the "
                f"adopted shards at {self._tmp}: the re-fed stream does not "
                "match the interrupted one",
                root=self._tmp,
            )
        self._drain(final=True)
        if self._buffered:
            self._emit(self._buffered)
        self._ensure_tmp()
        manifest = {
            "version": _FORMAT_VERSION,
            "schema": {
                name: dtype.str for name, dtype in self._schema.items()
            },
            "shard_rows": self._shard_rows,
            "group_by": self._group_by,
            "shards": self._shard_counts,
            "total_rows": int(sum(self._shard_counts)),
            "digests": self._digests,
        }
        manifest_path = self._tmp / _MANIFEST
        manifest_path.write_text(json.dumps(manifest, indent=1))
        _fsync_file(manifest_path)
        # The journal and lock are build-time state; the published tree
        # holds only the manifest and shards, identical whether or not
        # the spill was ever interrupted.
        for name in (_JOURNAL, _LOCK):
            path = self._tmp / name
            if path.exists():
                path.unlink()
        fsync_dir(self._tmp)
        # Shard payloads and directory entries are already fsync'd at
        # journal time, so the publish only needs the rename + parent
        # directory syncs.
        publish_atomically(self._tmp, self._dest, payload_synced=True)
        self._closed = True
        return ShardedTable.open(self._dest)

    def abort(self) -> None:
        """Stop writing; ``dest`` is untouched.

        A non-resumable writer discards its private build directory. A
        resumable writer keeps the partial directory — every journaled
        shard is durable, so a later ``resume=True`` writer continues
        from it — and only releases the ownership lock.
        """
        self._closed = True
        self._buffer = {name: [] for name in self._schema}
        self._buffered = 0
        if self._resumable:
            lock = self._tmp / _LOCK
            try:
                lock.unlink()
            except OSError:
                pass
            return
        if self._tmp.exists():
            shutil.rmtree(self._tmp, ignore_errors=True)

    # -- internals ---------------------------------------------------------

    def _ensure_tmp(self) -> None:
        if not self._started:
            self._tmp.mkdir(parents=True, exist_ok=False)
            self._started = True
            self._write_journal_header()
        journal = self._tmp / _JOURNAL
        if not journal.exists():
            self._write_journal_header(
                truncate_to=list(zip(self._shard_counts, self._digests))
            )

    def _drain(self, *, final: bool) -> None:
        """Emit every shard whose boundary is already determined.

        In row mode a shard is determined once ``shard_rows`` rows are
        buffered. In group-aligned mode the greedy cut at run boundary
        ``<= shard_rows`` is only final once more than ``shard_rows``
        rows are buffered (or at close): until then a later run could
        still join the shard.
        """
        if self._group_by is None:
            while self._buffered >= self._shard_rows:
                self._emit(self._shard_rows)
            return
        while self._buffered > self._shard_rows or (
            final and self._buffered > 0
        ):
            cut = self._group_cut(final=final)
            if cut == 0:
                break
            self._emit(cut)

    def _group_cut(self, *, final: bool) -> int:
        """Largest run boundary ``<= shard_rows`` from the buffer start.

        Falls back to the first run boundary when the leading run alone
        exceeds ``shard_rows``. Returns 0 when the boundary cannot be
        determined yet (everything buffered may share one run that is
        still growing).
        """
        keys = np.concatenate(self._buffer[self._group_by])
        change = np.flatnonzero(keys[1:] != keys[:-1]) + 1
        if change.size == 0:
            # One run so far. Only close() may cut inside a run's
            # potential continuation.
            return self._buffered if final else 0
        eligible = change[change <= self._shard_rows]
        if eligible.size:
            cut = int(eligible[-1])
            if final and self._buffered <= self._shard_rows:
                return self._buffered
            return cut
        # Leading run longer than shard_rows: it gets its own shard,
        # but only once we have seen its end (the first boundary).
        return int(change[0])

    def _emit(self, n_rows: int) -> None:
        self._ensure_tmp()
        index = len(self._shard_counts)
        shard_dir = self._tmp / _shard_name(index)
        shard_dir.mkdir()
        digests: dict[str, str] = {}
        first = True
        for name, dtype in self._schema.items():
            parts: list[np.ndarray] = []
            taken = 0
            chunks = self._buffer[name]
            while taken < n_rows:
                head = chunks[0]
                need = n_rows - taken
                if head.size <= need:
                    parts.append(chunks.pop(0))
                    taken += head.size
                else:
                    parts.append(head[:need])
                    chunks[0] = head[need:]
                    taken += need
            column = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
            # Serialize once in memory so the digest covers exactly the
            # bytes that reach disk; fsync before journaling makes a
            # journaled shard durable by construction.
            buf = io.BytesIO()
            np.save(buf, np.ascontiguousarray(column))
            payload = buf.getbuffer()
            digests[name] = hashlib.sha256(payload).hexdigest()
            path = shard_dir / f"{name}.npy"
            with open(path, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            if first and self._on_event is not None:
                self._on_event("column-written", index, self._resumed_shards)
            first = False
        # Pin the shard's directory entries before journaling so a
        # journaled shard is durable by construction, not just its
        # column bytes.
        fsync_dir(shard_dir)
        fsync_dir(self._tmp)
        self._buffered -= n_rows
        self._shard_counts.append(int(n_rows))
        self._digests.append(digests)
        self._journal_shard(index, int(n_rows), digests)
        if self._on_event is not None:
            self._on_event("shard-committed", index, self._resumed_shards)


class ShardedTable:
    """Read-only view over a published shard directory.

    ``verify`` selects the digest policy: ``"lazy"`` (default) checks
    each column file's sha256 the first time :meth:`shard` reads it,
    ``"full"`` checks everything at :meth:`open`, ``"none"`` skips
    digests entirely. Structural validation — every shard directory and
    column file present with the manifest's row counts — always runs at
    open, so a truncated or hand-edited table fails fast with a
    :class:`ShardIntegrityError` instead of feeding partial data to a
    kernel.
    """

    __slots__ = (
        "_root",
        "_schema",
        "_counts",
        "_shard_rows",
        "_group_by",
        "_digests",
        "_verify",
        "_verified",
    )

    def __init__(
        self,
        root: Path,
        schema: dict[str, np.dtype],
        counts: list[int],
        shard_rows: int,
        group_by: str | None,
        digests: list[dict[str, str]] | None = None,
        verify: str = "lazy",
    ) -> None:
        self._root = root
        self._schema = schema
        self._counts = counts
        self._shard_rows = shard_rows
        self._group_by = group_by
        self._digests = digests
        self._verify = verify
        self._verified: set[tuple[int, str]] = set()

    @classmethod
    def open(
        cls, root: str | Path, *, verify: str = "lazy"
    ) -> "ShardedTable":
        if verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {verify!r}; available: {VERIFY_MODES}"
            )
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no shard manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported shard format version {version!r} at {root}"
            )
        schema = {
            name: np.dtype(spec) for name, spec in manifest["schema"].items()
        }
        # Manifest JSON, not a table column (one entry per shard).
        counts = [int(n) for n in manifest["shards"]]  # reprolint: disable=REP502
        raw_digests = manifest.get("digests")
        digests: list[dict[str, str]] | None = None
        if raw_digests is not None:
            if len(raw_digests) != len(counts):
                raise ShardIntegrityError(
                    f"manifest at {root} lists {len(counts)} shards but "
                    f"{len(raw_digests)} digest entries",
                    root=root,
                )
            digests = [dict(entry) for entry in raw_digests]
        table = cls(
            root=root,
            schema=schema,
            counts=counts,
            shard_rows=int(manifest["shard_rows"]),
            group_by=manifest.get("group_by"),
            digests=digests,
            verify=verify,
        )
        table._validate_structure()
        if verify == "full":
            table.verify_all()
        return table

    # -- integrity ---------------------------------------------------------

    def _validate_structure(self) -> None:
        """Cheap open-time check: files present, header row counts match.

        Reads only ``.npy`` headers, never column data, so open stays
        O(shards x columns) tiny reads even for huge tables.
        """
        for index, rows in enumerate(self._counts):
            shard_dir = self._root / _shard_name(index)
            if not shard_dir.is_dir():
                raise ShardIntegrityError(
                    f"shard directory missing: {shard_dir} (manifest lists "
                    f"{len(self._counts)} shards)",
                    root=self._root,
                    shard=index,
                )
            for name in self._schema:
                path = shard_dir / f"{name}.npy"
                if not path.is_file():
                    raise ShardIntegrityError(
                        f"column file missing: {path}",
                        root=self._root,
                        shard=index,
                        column=name,
                    )
                try:
                    on_disk = _npy_rows(path)
                except (OSError, ValueError) as exc:
                    raise ShardIntegrityError(
                        f"unreadable column header at {path}: {exc}",
                        root=self._root,
                        shard=index,
                        column=name,
                    ) from exc
                if on_disk != rows:
                    raise ShardIntegrityError(
                        f"row-count mismatch at {path}: manifest says "
                        f"{rows}, file holds {on_disk}",
                        root=self._root,
                        shard=index,
                        column=name,
                    )

    def verify_shard(
        self, index: int, columns: Sequence[str] | None = None
    ) -> None:
        """Digest-check one shard's column files (no-op for v1 tables).

        Each (shard, column) pair is checked at most once per instance;
        repeated reads of a verified shard pay nothing.
        """
        if self._digests is None:
            return
        expected = self._digests[index]
        shard_dir = self._root / _shard_name(index)
        for name in self._select(columns):
            if (index, name) in self._verified:
                continue
            path = shard_dir / f"{name}.npy"
            try:
                actual = _file_sha256(path)
            except OSError as exc:
                raise ShardIntegrityError(
                    f"unreadable column file at {path}: {exc}",
                    root=self._root,
                    shard=index,
                    column=name,
                ) from exc
            recorded = expected.get(name)
            if recorded is None:
                raise ShardIntegrityError(
                    f"manifest at {self._root} has no digest for column "
                    f"{name!r} of shard {index}",
                    root=self._root,
                    shard=index,
                    column=name,
                )
            if actual != recorded:
                raise ShardIntegrityError(
                    f"digest mismatch at {path}: the shard is corrupt or "
                    "torn (quarantine and re-derive the table)",
                    root=self._root,
                    shard=index,
                    column=name,
                )
            self._verified.add((index, name))

    def verify_all(self) -> None:
        """Digest-check every column file of every shard."""
        for index in range(len(self._counts)):
            self.verify_shard(index)

    # -- metadata ----------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    @property
    def schema(self) -> dict[str, np.dtype]:
        return dict(self._schema)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._schema)

    @property
    def num_shards(self) -> int:
        return len(self._counts)

    @property
    def num_rows(self) -> int:
        return sum(self._counts)

    @property
    def shard_rows(self) -> int:
        return self._shard_rows

    @property
    def group_by(self) -> str | None:
        return self._group_by

    @property
    def shard_counts(self) -> tuple[int, ...]:
        return tuple(self._counts)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        cols = ", ".join(f"{k}:{v}" for k, v in self._schema.items())
        return (
            f"ShardedTable(rows={self.num_rows}, shards={self.num_shards}, "
            f"columns=[{cols}])"
        )

    # -- shard access ------------------------------------------------------

    def shard(self, index: int, columns: Sequence[str] | None = None) -> Table:
        """One shard as a Table of memory-mapped columns.

        Column data is paged in lazily by the OS; slicing or reducing a
        column touches only that column's pages. Under ``verify="lazy"``
        the first read of each column file pays one digest pass first.
        """
        if not 0 <= index < len(self._counts):
            raise IndexError(
                f"shard index {index} out of range [0, {len(self._counts)})"
            )
        names = self._select(columns)
        if self._verify == "lazy":
            self.verify_shard(index, names)
        shard_dir = self._root / _shard_name(index)
        return Table(
            {
                name: np.load(shard_dir / f"{name}.npy", mmap_mode="r")
                for name in names
            }
        )

    def iter_shards(
        self, columns: Sequence[str] | None = None
    ) -> Iterator[Table]:
        """Yield each shard in order; one shard live at a time."""
        for index in range(len(self._counts)):
            yield self.shard(index, columns)

    def map_columns(
        self,
        fn: Callable[[Table], object],
        columns: Sequence[str] | None = None,
    ) -> Iterator[object]:
        """Apply ``fn`` to each shard lazily, yielding the results."""
        for shard in self.iter_shards(columns):
            yield fn(shard)

    def to_table(self, columns: Sequence[str] | None = None) -> Table:
        """Materialize the whole table in memory (concat of all shards)."""
        names = self._select(columns)
        if not self._counts:
            return Table(
                {
                    name: np.empty(0, dtype=self._schema[name])
                    for name in names
                }
            )
        parts = [self.shard(i, names) for i in range(len(self._counts))]
        return Table(
            {
                name: np.concatenate([part[name] for part in parts])
                for name in names
            }
        )

    def _select(self, columns: Sequence[str] | None) -> tuple[str, ...]:
        if columns is None:
            return tuple(self._schema)
        unknown = set(columns) - set(self._schema)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        return tuple(columns)


def write_table(
    table: Table,
    dest: str | Path,
    shard_rows: int,
    *,
    group_by: str | None = None,
    resume: bool = False,
    on_event: Callable[[str, int, int], None] | None = None,
) -> ShardedTable:
    """Spill an in-memory Table to a new sharded table in one call."""
    schema = {name: table[name].dtype for name in table.column_names}
    with ShardWriter(
        dest,
        schema,
        shard_rows,
        group_by=group_by,
        resume=resume,
        on_event=on_event,
    ) as writer:
        writer.append(table)
    return ShardedTable.open(dest)
