"""High-level Cloud-vs-Grid comparison API.

Bundles the per-system workload analyses of Section III into one call:
given per-job summary tables (Google and any number of Grid systems in
the common :data:`~repro.traces.schema.JOB_TABLE_SCHEMA` layout), it
produces job-length CDFs, submission-rate rows, interarrival CDFs and
resource-usage distributions, plus the headline Cloud-vs-Grid verdicts
the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ecdf import ECDF, ecdf
from .fairness import SubmissionRateStats, submission_rate_stats
from .table import Table

__all__ = [
    "SystemWorkload",
    "CloudGridComparison",
    "compare_systems",
    "job_interarrival_times",
]


def job_interarrival_times(job_table: Table) -> np.ndarray:
    """Sorted submission times -> consecutive interarrival gaps (Fig. 5)."""
    submit = np.sort(np.asarray(job_table["submit_time"], dtype=np.float64))
    if submit.size < 2:
        return np.empty(0)
    return np.diff(submit)


@dataclass(frozen=True)
class SystemWorkload:
    """One system's per-job workload summaries."""

    name: str
    job_length_cdf: ECDF
    interarrival_cdf: ECDF
    submission: SubmissionRateStats
    cpu_usage_cdf: ECDF
    mem_usage_cdf: ECDF
    mean_job_length: float
    mean_tasks_per_job: float


@dataclass(frozen=True)
class CloudGridComparison:
    """Comparison of one Cloud system against a set of Grid systems."""

    cloud: SystemWorkload
    grids: dict[str, SystemWorkload] = field(default_factory=dict)

    def headline(self) -> dict[str, object]:
        """The paper's qualitative findings, computed from the data.

        Returns a mapping with boolean verdicts plus the supporting
        numbers; all comparisons are against the Grid systems' mean.
        """
        if not self.grids:
            raise ValueError("comparison requires at least one grid system")
        grid_rates = np.array([g.submission.avg_per_hour for g in self.grids.values()])
        grid_fairness = np.array([g.submission.fairness for g in self.grids.values()])
        grid_lengths = np.array([g.mean_job_length for g in self.grids.values()])
        grid_cpu_median = np.array(
            [g.cpu_usage_cdf.quantile(0.5) for g in self.grids.values()]
        )
        cloud_cpu_median = self.cloud.cpu_usage_cdf.quantile(0.5)
        return {
            "cloud_submits_faster": bool(
                self.cloud.submission.avg_per_hour > grid_rates.max()
            ),
            "cloud_rate_per_hour": self.cloud.submission.avg_per_hour,
            "grid_max_rate_per_hour": float(grid_rates.max()),
            "cloud_more_stable_submission": bool(
                self.cloud.submission.fairness > grid_fairness.max()
            ),
            "cloud_fairness": self.cloud.submission.fairness,
            "grid_fairness_range": (
                float(grid_fairness.min()),
                float(grid_fairness.max()),
            ),
            "cloud_jobs_shorter": bool(
                self.cloud.mean_job_length < grid_lengths.min()
            ),
            "cloud_mean_job_length": self.cloud.mean_job_length,
            "grid_mean_job_length_range": (
                float(grid_lengths.min()),
                float(grid_lengths.max()),
            ),
            "cloud_lower_cpu_demand": bool(
                cloud_cpu_median < grid_cpu_median.min()
            ),
            "cloud_cpu_median": float(cloud_cpu_median),
            "grid_cpu_median_range": (
                float(grid_cpu_median.min()),
                float(grid_cpu_median.max()),
            ),
        }


def _system_workload(name: str, jobs: Table, horizon: float | None) -> SystemWorkload:
    lengths = np.asarray(jobs["end_time"] - jobs["submit_time"], dtype=np.float64)
    inter = job_interarrival_times(jobs)
    if inter.size == 0:
        inter = np.array([0.0])
    cpu = np.asarray(jobs["cpu_usage"], dtype=np.float64)
    mem = np.asarray(jobs["mem_usage"], dtype=np.float64)
    return SystemWorkload(
        name=name,
        job_length_cdf=ecdf(lengths),
        interarrival_cdf=ecdf(inter),
        submission=submission_rate_stats(np.asarray(jobs["submit_time"]), horizon),
        cpu_usage_cdf=ecdf(cpu),
        mem_usage_cdf=ecdf(mem),
        mean_job_length=float(lengths.mean()),
        mean_tasks_per_job=float(np.asarray(jobs["num_tasks"]).mean()),
    )


def compare_systems(
    cloud_jobs: Table,
    grid_jobs: dict[str, Table],
    cloud_name: str = "Google",
    horizon: float | None = None,
) -> CloudGridComparison:
    """Build a :class:`CloudGridComparison` from per-job summary tables.

    All tables must follow the common job-table schema (convert archive
    formats with :func:`repro.traces.convert.grid_jobs_to_job_table`).
    """
    if not grid_jobs:
        raise ValueError("at least one grid system is required")
    cloud = _system_workload(cloud_name, cloud_jobs, horizon)
    grids = {
        name: _system_workload(name, table, horizon)
        for name, table in grid_jobs.items()
    }
    return CloudGridComparison(cloud=cloud, grids=grids)
