"""Empirical distribution functions and histograms.

The paper's workload figures (Figs. 3, 5, 6) are empirical CDFs; Fig. 2
is a histogram and Fig. 7 a binned PDF. All functions are vectorized
and operate on plain 1-D arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ECDF", "ecdf", "evaluate_cdf", "binned_pdf", "histogram_counts", "quantile"]


@dataclass(frozen=True)
class ECDF:
    """Empirical CDF of a sample.

    Attributes
    ----------
    values:
        Sorted distinct sample values.
    probabilities:
        ``P(X <= values[i])`` for each value; weakly increasing, ends at 1.
    """

    values: np.ndarray
    probabilities: np.ndarray
    #: ``probabilities`` with a leading 0, so evaluation below the
    #: sample minimum indexes cleanly. Built once here — evaluation
    #: sits in hot loops and must not re-allocate per call.
    _padded: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_padded", np.concatenate(([0.0], self.probabilities))
        )

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the CDF at arbitrary points (right-continuous)."""
        x_arr = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.values, x_arr, side="right")
        out = self._padded[idx]
        return out if x_arr.ndim else float(out)

    def quantile(self, q: np.ndarray | float) -> np.ndarray | float:
        """Inverse CDF: smallest value with CDF >= q."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantile levels must be in [0, 1]")
        idx = np.searchsorted(self.probabilities, q_arr, side="left")
        idx = np.minimum(idx, len(self.values) - 1)
        out = self.values[idx]
        return out if q_arr.ndim else float(out)


def ecdf(sample: np.ndarray) -> ECDF:
    """Build the empirical CDF of a non-empty sample."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("sample must be non-empty")
    if np.any(~np.isfinite(sample)):
        raise ValueError("sample contains non-finite values")
    values, counts = np.unique(sample, return_counts=True)
    probabilities = np.cumsum(counts) / sample.size
    return ECDF(values=values, probabilities=probabilities)


def evaluate_cdf(sample: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Convenience: fraction of ``sample`` <= each of ``points``."""
    return np.asarray(ecdf(sample)(np.asarray(points, dtype=np.float64)))


def binned_pdf(
    sample: np.ndarray, bins: int | np.ndarray = 50, range_: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Probability mass per bin (sums to 1), as in the paper's Fig. 7.

    Returns ``(bin_centers, mass)``.
    """
    sample = np.asarray(sample, dtype=np.float64)
    counts, edges = np.histogram(sample, bins=bins, range=range_)
    total = counts.sum()
    mass = counts / total if total else counts.astype(np.float64)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, mass


def histogram_counts(values: np.ndarray, categories: np.ndarray) -> np.ndarray:
    """Count occurrences of each category value (Fig. 2 histograms)."""
    values = np.asarray(values)
    categories = np.asarray(categories)
    return np.array(
        [int(np.count_nonzero(values == c)) for c in categories], dtype=np.int64
    )


def quantile(sample: np.ndarray, q: float) -> float:
    """ECDF-consistent quantile of a sample."""
    return float(ecdf(sample).quantile(q))
