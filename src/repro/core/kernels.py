"""Vectorized analysis kernels shared by the hostload/sim/synth layers.

The paper-scale trace (25M tasks, >12.5k machines, a month of 5-minute
samples) turns every per-machine Python loop into a bottleneck. This
module collects the hot inner passes as single-sweep NumPy kernels:

* :func:`run_length_encode` — maximal constant runs of a code array.
* :func:`pooled_level_durations` — run-length segmentation of *many*
  concatenated series in one pass (replaces the per-machine loop over
  :func:`repro.core.segments.level_durations`).
* :func:`grouped_sort_split` — one ``lexsort`` + ``np.split`` grouped
  pass over a :class:`~repro.core.table.Table` (replaces per-key
  filter-and-sort scans, which are O(groups x rows)).
* :class:`MassCountAccumulator` — chunked mass-count pooling for
  streaming/columnar generation.

Equivalence contract: every kernel here is **bit-identical** to the
scalar path it replaces. The scalar implementations are intentionally
kept (as golden references) next to their call sites and the
``tests/test_kernels.py`` golden suite runs both on seeded inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ecdf import ECDF
from .masscount import MassCount, mass_count
from .segments import DEFAULT_USAGE_LEVELS, discretize
from .table import Table

__all__ = [
    "RunLengths",
    "run_length_encode",
    "merge_run_lengths",
    "pooled_level_durations",
    "grouped_sort_split",
    "MassCountAccumulator",
    "ECDFAccumulator",
]


@dataclass(frozen=True)
class RunLengths:
    """Maximal constant runs of a 1-D code array.

    ``values[i]`` repeats ``lengths[i]`` times starting at ``starts[i]``;
    concatenating the runs reconstructs the input exactly.
    """

    starts: np.ndarray
    lengths: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.starts)


def run_length_encode(codes: np.ndarray) -> RunLengths:
    """``np.diff``-based run-length encoding of a 1-D array."""
    codes = np.asarray(codes)
    if codes.ndim != 1:
        raise ValueError(f"codes must be 1-D, got ndim={codes.ndim}")
    if codes.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return RunLengths(starts=empty, lengths=empty.copy(), values=codes[:0])
    change = np.flatnonzero(codes[1:] != codes[:-1]) + 1
    starts = np.concatenate(([0], change)).astype(np.int64)
    ends = np.concatenate((change, [codes.size])).astype(np.int64)
    return RunLengths(starts=starts, lengths=ends - starts, values=codes[starts])


def merge_run_lengths(left: RunLengths, right: RunLengths) -> RunLengths:
    """Stitch the run encodings of two *adjacent* chunks.

    ``left`` encodes ``codes[:n]`` and ``right`` encodes ``codes[n:]``
    (each with starts relative to its own chunk); the result encodes the
    concatenation, bit-identical to :func:`run_length_encode` on the
    full array. When the chunks meet inside one run — ``left`` ends
    with the value ``right`` starts with — the boundary runs fuse.
    Associative, so any regrouping of an ordered chunk sequence folds
    to the same encoding.
    """
    if len(left) == 0:
        return right
    if len(right) == 0:
        return left
    n_left = int(left.starts[-1] + left.lengths[-1])
    if left.values[-1] == right.values[0]:
        starts = np.concatenate((left.starts, right.starts[1:] + n_left))
        lengths = np.concatenate(
            (
                left.lengths[:-1],
                [left.lengths[-1] + right.lengths[0]],
                right.lengths[1:],
            )
        ).astype(np.int64)
        values = np.concatenate((left.values, right.values[1:]))
    else:
        starts = np.concatenate((left.starts, right.starts + n_left))
        lengths = np.concatenate((left.lengths, right.lengths))
        values = np.concatenate((left.values, right.values))
    return RunLengths(
        starts=starts.astype(np.int64), lengths=lengths, values=values
    )


def _series_tails(
    starts: np.ndarray,
    ends: np.ndarray,
    diffs: np.ndarray,
    within: np.ndarray,
) -> np.ndarray:
    """Trailing sampling interval per series: median spacing, or 1.0.

    Mirrors :func:`repro.core.segments.constant_segments` exactly — a
    single-sample series gets tail 1.0, otherwise the median of its
    consecutive time differences. ``within`` masks the diff positions
    that do not cross a series boundary.
    """
    counts = ends - starts
    if counts.size == 0:
        return np.empty(0)
    length = counts[0]
    if length > 1 and np.all(counts == length):
        # Equal-length fast path: the within-series diffs concatenate
        # to (n_series, length - 1) rows; one axis-wise median.
        return np.median(diffs[within].reshape(-1, length - 1), axis=1)
    tails = np.empty(counts.size)
    for i, (s, e) in enumerate(zip(starts, ends)):
        tails[i] = float(np.median(diffs[s : e - 1])) if e - s > 1 else 1.0
    return tails


def pooled_level_durations(
    times: np.ndarray,
    values: np.ndarray,
    lengths: np.ndarray,
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
) -> dict[int, np.ndarray]:
    """Unchanged-level durations of many concatenated series, one pass.

    ``times``/``values`` hold ``len(lengths)`` series back to back
    (series ``i`` spans ``lengths[i]`` samples); the result is keyed by
    level and concatenates every series' run durations in series order —
    bit-identical to looping :func:`repro.core.segments.level_durations`
    over the series and concatenating per level.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if times.shape != values.shape or times.ndim != 1:
        raise ValueError("times and values must be 1-D with equal shape")
    if np.any(lengths < 0) or int(lengths.sum()) != times.size:
        raise ValueError("lengths must be non-negative and sum to len(times)")
    n_levels = len(np.asarray(edges)) - 1
    if times.size == 0:
        # discretize() still validates the edges on the empty pool.
        discretize(values, edges)
        return {lvl: np.empty(0) for lvl in range(n_levels)}

    levels = discretize(values, edges)
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    nonempty = lengths > 0
    series_starts = offsets[:-1][nonempty]
    series_ends = offsets[1:][nonempty]

    is_series_start = np.zeros(times.size, dtype=bool)
    is_series_start[series_starts] = True
    diffs = np.diff(times)
    within = ~is_series_start[1:]  # diff positions that stay in one series
    if np.any(diffs[within] <= 0):
        raise ValueError("times must be strictly increasing")

    is_run_start = is_series_start.copy()
    is_run_start[1:] |= (levels[1:] != levels[:-1]) & within
    run_starts = np.flatnonzero(is_run_start)
    run_levels = levels[run_starts]

    tails = _series_tails(series_starts, series_ends, diffs, within)
    series_end_times = times[series_ends - 1] + tails

    series_of_run = (
        np.searchsorted(series_starts, run_starts, side="right") - 1
    )
    last_run = np.ones(run_starts.size, dtype=bool)
    last_run[:-1] = series_of_run[1:] != series_of_run[:-1]

    next_boundary = np.empty(run_starts.size)
    next_boundary[:-1] = times[run_starts[1:]]
    next_boundary[last_run] = series_end_times[series_of_run[last_run]]
    durations = next_boundary - times[run_starts]
    return {lvl: durations[run_levels == lvl] for lvl in range(n_levels)}


def grouped_sort_split(
    table: Table, key: str, within: str | None = None
) -> tuple[np.ndarray, dict[str, list[np.ndarray]]]:
    """Split every column of ``table`` by ``key`` with one stable sort.

    Returns ``(unique_keys, columns)`` where ``columns[name][i]`` is the
    slice of column ``name`` belonging to ``unique_keys[i]``, ordered by
    ``within`` (ties keep original row order). Bit-identical to masking
    the table once per key and ``sort_by(within)``-ing each subset, but
    a single O(n log n) pass: the per-group slices are views into one
    gathered array, so no per-group copies are made.
    """
    keys = table[key]
    if len(keys) == 0:
        return keys[:0], {name: [] for name in table.column_names}
    if within is not None:
        order = np.lexsort((table[within], keys))
    else:
        order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    bounds = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    unique_keys = sorted_keys[np.concatenate(([0], bounds))]
    columns = {
        name: np.split(table[name][order], bounds)
        for name in table.column_names
    }
    return unique_keys, columns


class MassCountAccumulator:
    """Pool sample chunks for one final mass-count pass.

    Chunked/columnar generators produce values block by block; this
    accumulator collects the blocks and finalizes with a single
    :func:`~repro.core.masscount.mass_count` over their concatenation —
    bit-identical to materializing the pool up front, while the producer
    only ever holds one block of its full columns in memory.
    """

    def __init__(self, *, positive_only: bool = False) -> None:
        self._chunks: list[np.ndarray] = []
        self._positive_only = positive_only

    def add(self, values: np.ndarray) -> None:
        """Add one chunk (values are copied to float64)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("chunks must be 1-D")
        if self._positive_only:
            arr = arr[arr > 0]
        if arr.size:
            self._chunks.append(np.array(arr, dtype=np.float64, copy=True))

    @property
    def n_values(self) -> int:
        return sum(chunk.size for chunk in self._chunks)

    def merged(self) -> np.ndarray:
        """All pooled values in insertion order."""
        if not self._chunks:
            return np.empty(0)
        return np.concatenate(self._chunks)

    def merge(self, other: "MassCountAccumulator") -> "MassCountAccumulator":
        """Append another accumulator's chunks after this one's.

        Order matters for bit-identity: ``mass_count`` sums the pooled
        sample in insertion order (pairwise summation over the
        concatenated array), so merging shard accumulators in shard
        order reproduces the in-memory total exactly.
        """
        if other._positive_only != self._positive_only:
            raise ValueError("cannot merge accumulators with different filters")
        self._chunks.extend(other._chunks)
        return self

    def finalize(self) -> MassCount:
        """Mass-count disparity of the pooled sample."""
        return mass_count(self.merged())


class ECDFAccumulator:
    """Mergeable ECDF state: sorted distinct values + integer counts.

    Exactness contract: for any partition of a sample into chunks, in
    any order and any merge grouping, ``finalize()`` is bit-identical
    to :func:`repro.core.ecdf.ecdf` on the full sample. This holds
    because the state is value-keyed integer counts — the merged
    distinct values equal the full sample's distinct values, integer
    count addition is exact and order-free, and the final probabilities
    divide the same ``cumsum`` of the same ``int64`` counts by the same
    total.
    """

    def __init__(self) -> None:
        self._values = np.empty(0, dtype=np.float64)
        self._counts = np.empty(0, dtype=np.int64)

    def add(self, sample: np.ndarray) -> None:
        """Fold one sample chunk into the state."""
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 1:
            raise ValueError("chunks must be 1-D")
        if np.any(~np.isfinite(sample)):
            raise ValueError("sample contains non-finite values")
        if sample.size == 0:
            return
        values, counts = np.unique(sample, return_counts=True)
        self._fold(values, counts.astype(np.int64))

    def merge(self, other: "ECDFAccumulator") -> "ECDFAccumulator":
        """Fold another accumulator's state into this one."""
        self._fold(other._values, other._counts)
        return self

    def _fold(self, values: np.ndarray, counts: np.ndarray) -> None:
        if values.size == 0:
            return
        if self._values.size == 0:
            self._values = values.copy()
            self._counts = counts.copy()
            return
        pooled = np.concatenate((self._values, values))
        unique, inverse = np.unique(pooled, return_inverse=True)
        total = np.zeros(unique.size, dtype=np.int64)
        np.add.at(total, inverse, np.concatenate((self._counts, counts)))
        self._values = unique
        self._counts = total

    @property
    def n_values(self) -> int:
        return int(self._counts.sum())

    def finalize(self) -> ECDF:
        """The ECDF of everything added so far."""
        n = int(self._counts.sum())
        if n == 0:
            raise ValueError("sample must be non-empty")
        return ECDF(
            values=self._values, probabilities=np.cumsum(self._counts) / n
        )
