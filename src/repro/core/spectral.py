"""Temporal-structure analysis: ACF, periodogram, diurnal strength.

The related work the paper builds on (H. Li's Grid workload dynamics)
shows Grid load has strong diurnal periodicity exploitable for
prediction, while Section IV finds Google load nearly structureless.
These tools quantify that contrast: autocorrelation functions, an
FFT periodogram, and a diurnal-strength index comparing spectral mass
at the 24-hour frequency against the background.
"""

from __future__ import annotations

import numpy as np

from .noise import autocorrelation

__all__ = [
    "acf",
    "periodogram",
    "dominant_period",
    "diurnal_strength",
    "folded_daily_profile",
    "daily_profile_amplitude",
]


def acf(signal: np.ndarray, max_lag: int) -> np.ndarray:
    """Autocorrelation function for lags ``1..max_lag``."""
    signal = np.asarray(signal, dtype=np.float64)
    if max_lag < 1:
        raise ValueError("max_lag must be >= 1")
    if signal.size <= max_lag:
        raise ValueError("signal shorter than max_lag")
    return np.asarray(
        [autocorrelation(signal, lag) for lag in range(1, max_lag + 1)]
    )


def periodogram(
    signal: np.ndarray, sample_period: float
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided power spectrum ``(frequencies_hz, power)`` of a series.

    The mean is removed before the FFT so the DC component does not
    swamp the spectrum.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.size < 4:
        raise ValueError("signal too short for a periodogram")
    if sample_period <= 0:
        raise ValueError("sample_period must be positive")
    x = signal - signal.mean()
    spectrum = np.fft.rfft(x)
    power = (np.abs(spectrum) ** 2) / signal.size
    freqs = np.fft.rfftfreq(signal.size, d=sample_period)
    return freqs[1:], power[1:]  # drop the (zeroed) DC bin


def dominant_period(signal: np.ndarray, sample_period: float) -> float:
    """Period (seconds) of the strongest spectral component."""
    freqs, power = periodogram(signal, sample_period)
    return float(1.0 / freqs[int(np.argmax(power))])


def diurnal_strength(
    signal: np.ndarray, sample_period: float, tolerance: float = 0.2
) -> float:
    """Spectral mass near the 24-hour frequency over the total mass.

    ``tolerance`` widens the band around 1/86400 Hz (fractional). A
    strongly diurnal Grid arrival series scores far above a flat Cloud
    series; 0 means no daily structure at all.
    """
    if not 0 < tolerance < 1:
        raise ValueError("tolerance must be in (0, 1)")
    freqs, power = periodogram(signal, sample_period)
    total = float(power.sum())
    if total <= 0:
        return 0.0
    target = 1.0 / 86400.0
    band = (freqs >= target * (1 - tolerance)) & (
        freqs <= target * (1 + tolerance)
    )
    return float(power[band].sum() / total)


def folded_daily_profile(
    values: np.ndarray, samples_per_day: int
) -> np.ndarray:
    """Average value per position-in-day (fold the series by day).

    Whole days only; trailing partial days are dropped. This is the
    robust way to expose diurnal structure in bursty series, where the
    burst noise swamps a raw periodogram.
    """
    values = np.asarray(values, dtype=np.float64)
    if samples_per_day < 2:
        raise ValueError("samples_per_day must be >= 2")
    n_days = values.size // samples_per_day
    if n_days < 1:
        raise ValueError("series shorter than one day")
    folded = values[: n_days * samples_per_day].reshape(
        n_days, samples_per_day
    )
    return folded.mean(axis=0)


def daily_profile_amplitude(
    values: np.ndarray, samples_per_day: int
) -> float:
    """Relative swing of the folded daily profile: (max-min)/mean.

    ~0 for flat Cloud submission streams; large for diurnal Grid
    streams (the day/night cycle the paper's Grids exhibit).
    """
    profile = folded_daily_profile(values, samples_per_day)
    mean = float(profile.mean())
    if mean <= 0:
        return 0.0
    return float((profile.max() - profile.min()) / mean)
