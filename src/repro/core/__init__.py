"""Statistical characterization toolkit — the paper's methodology."""

from .compare import (
    CloudGridComparison,
    SystemWorkload,
    compare_systems,
    job_interarrival_times,
)
from .diskcache import MISS, CacheStats, DiskCache, cache_key, fingerprint
from .distance import cdf_area_distance, ks_two_sample, stochastically_smaller
from .distributions import (
    BoundedPareto,
    Deterministic,
    Distribution,
    Exponential,
    HyperExponential,
    LogNormal,
    Mixture,
    Uniform,
)
from .ecdf import ECDF, binned_pdf, ecdf, evaluate_cdf, histogram_counts, quantile
from .fit import (
    CANDIDATE_FAMILIES,
    FittedModel,
    fit_best,
    fit_bounded_pareto,
    fit_exponential,
    fit_lognormal,
    fit_weibull,
    ks_statistic,
)
from .fairness import (
    SubmissionRateStats,
    hourly_counts,
    jain_fairness,
    submission_rate_stats,
)
from .kernels import (
    MassCountAccumulator,
    RunLengths,
    grouped_sort_split,
    pooled_level_durations,
    run_length_encode,
)
from .masscount import MassCount, joint_ratio_label, mass_count
from .noise import autocorrelation, mean_filter, noise_series, noise_stats
from .report import format_number, render_kv, render_table
from .spectral import (
    acf,
    daily_profile_amplitude,
    diurnal_strength,
    dominant_period,
    folded_daily_profile,
    periodogram,
)
from .segments import (
    DEFAULT_USAGE_LEVELS,
    QUEUE_STATE_LEVELS,
    Segments,
    constant_segments,
    discretize,
    level_durations,
    usage_level_labels,
)
from .summary import SampleSummary, fraction_below, fraction_between, summarize
from .table import Table, concat_tables
from .timing import StageStats, Timings, render_timings
from .usage import cpu_usage_eq4, memory_usage_mb

__all__ = [
    "BoundedPareto",
    "MassCountAccumulator",
    "RunLengths",
    "grouped_sort_split",
    "pooled_level_durations",
    "run_length_encode",
    "CANDIDATE_FAMILIES",
    "CacheStats",
    "CloudGridComparison",
    "Deterministic",
    "DiskCache",
    "Distribution",
    "Exponential",
    "FittedModel",
    "HyperExponential",
    "LogNormal",
    "MISS",
    "Mixture",
    "StageStats",
    "Table",
    "Timings",
    "Uniform",
    "cache_key",
    "fingerprint",
    "concat_tables",
    "job_interarrival_times",
    "acf",
    "cdf_area_distance",
    "daily_profile_amplitude",
    "diurnal_strength",
    "dominant_period",
    "fit_best",
    "folded_daily_profile",
    "fit_bounded_pareto",
    "fit_exponential",
    "fit_lognormal",
    "fit_weibull",
    "ks_statistic",
    "ks_two_sample",
    "periodogram",
    "stochastically_smaller",
    "DEFAULT_USAGE_LEVELS",
    "ECDF",
    "MassCount",
    "QUEUE_STATE_LEVELS",
    "SampleSummary",
    "Segments",
    "SubmissionRateStats",
    "SystemWorkload",
    "autocorrelation",
    "binned_pdf",
    "compare_systems",
    "constant_segments",
    "cpu_usage_eq4",
    "discretize",
    "ecdf",
    "evaluate_cdf",
    "fraction_below",
    "fraction_between",
    "format_number",
    "histogram_counts",
    "hourly_counts",
    "jain_fairness",
    "joint_ratio_label",
    "level_durations",
    "mass_count",
    "mean_filter",
    "memory_usage_mb",
    "noise_series",
    "noise_stats",
    "quantile",
    "render_kv",
    "render_table",
    "render_timings",
    "submission_rate_stats",
    "summarize",
    "usage_level_labels",
]
