"""Content-addressed on-disk cache for derived dataset artifacts.

Every experiment run regenerates the same synthetic traces and
simulated months from scratch; at paper scale that costs tens of
seconds per process. Because every builder is a pure function of
``(scale, seed, config)`` — the determinism the REP101/REP501 lint
rules guarantee — the results can be cached on disk under a key
derived from exactly those inputs plus a code/schema version, and a
warm cache is always safe to reuse.

Storage layout (one directory per entry, content-addressed)::

    <root>/<key[:2]>/<key>/
        skeleton.pkl   object tree with arrays replaced by references
        data.npz       the referenced NumPy arrays (compressed)
        meta.json      key + payload size, for inspection/eviction

Entries are written into a temp directory and renamed into place, so
readers never observe a half-written entry. Reads refresh the entry's
mtime; eviction drops the least-recently-used entries once the cache
exceeds its entry or byte budget. A corrupted entry (truncated file,
unpicklable skeleton) is moved into a ``.quarantine/`` directory —
kept for post-mortem inspection, never served again — and reported as
a miss, so the caller transparently rebuilds it; the ``quarantined``
counter surfaces the event in the run's timing footer. An entry that
simply *vanishes* mid-read (a concurrent process evicted it between
the existence check and the open) is a plain miss, not corruption.

The codec is structural, not type-specific: it walks dataclasses,
dicts, lists/tuples and :class:`~repro.core.table.Table` instances,
extracting every NumPy array into one ``npz`` payload and pickling the
remaining skeleton. That covers ``Table``, ``SimResult``,
``MachineLoadSeries`` and the dataset containers without this layer-0
module importing anything above ``core``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .fsutil import publish_atomically, remove_durable
from .table import Table

__all__ = [
    "MISS",
    "CacheCorruptionError",
    "CacheStats",
    "DiskCache",
    "cache_key",
    "fingerprint",
]


class CacheCorruptionError(RuntimeError):
    """A cache entry failed to decode and could not be served.

    :meth:`DiskCache.get` normally self-heals (quarantine the entry,
    report a miss, let the caller rebuild), so this error is not raised
    on the ordinary read path. It exists as the typed marker for cache
    corruption: fault injection raises it to exercise the supervisor's
    ``cache-corruption`` failure class, and any code that detects
    corruption it cannot transparently heal should raise it too.
    """


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MISS"


MISS = _Miss()


# -- keys ---------------------------------------------------------------------


def _canonical(obj: object) -> object:
    """Reduce an object to a JSON-stable structure for hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__qualname__,
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {
            "__dict__": [
                [_canonical(k), _canonical(v)]
                for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
            ]
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        # Canonicalize element-first, then sort the renderings: set
        # iteration order is per-process (hash randomization) and must
        # never reach key material.
        return {
            "__set__": sorted(
                (_canonical(v) for v in obj), key=lambda c: repr(c)
            )
        }
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes())
        return {
            "__ndarray__": digest.hexdigest(),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, float):
        return repr(obj)  # full precision, unlike JSON's default
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if callable(obj) and hasattr(obj, "__qualname__"):
        return f"callable:{getattr(obj, '__module__', '?')}.{obj.__qualname__}"
    # Plain objects (e.g. non-dataclass Distributions): hash by type
    # plus attribute state — default reprs embed memory addresses.
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            name: getattr(obj, name)
            for name in type(obj).__slots__
            if hasattr(obj, name)
        }
    if isinstance(state, dict) and state:
        return {
            "__object__": type(obj).__qualname__,
            "state": {k: _canonical(v) for k, v in sorted(state.items())},
        }
    return repr(obj)


def fingerprint(obj: object) -> str:
    """Short stable digest of a configuration object.

    Dataclasses hash by field values (recursively), so any change to a
    model knob — including nested distribution parameters — changes the
    fingerprint and therefore misses the cache.
    """
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def cache_key(**components: object) -> str:
    """Content-addressed key from named components.

    Components typically include the dataset kind, scale, seed, config
    fingerprint and a code/schema version; any difference in any
    component yields a different key.
    """
    if not components:
        raise ValueError("cache_key requires at least one component")
    return hashlib.sha256(
        json.dumps(
            {k: _canonical(v) for k, v in components.items()},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
    ).hexdigest()


# -- structural codec ---------------------------------------------------------


@dataclass(frozen=True)
class _ArrayRef:
    """Placeholder for an array stored in the entry's npz payload."""

    index: int


@dataclass(frozen=True)
class _TableRef:
    """Placeholder for a Table; columns reference npz arrays."""

    columns: tuple[tuple[str, "_ArrayRef"], ...]


@dataclass(frozen=True)
class _ObjRef:
    """Placeholder for a dataclass instance, rebuilt via its __init__."""

    cls: type
    state: tuple[tuple[str, object], ...]


def _encode(obj: object, arrays: list[np.ndarray]) -> object:
    """Replace arrays/Tables/dataclasses with references, recursively."""
    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            return obj  # rare; stays in the pickled skeleton
        arrays.append(obj)
        return _ArrayRef(len(arrays) - 1)
    if isinstance(obj, Table):
        return _TableRef(
            tuple(
                (name, _encode(obj[name], arrays))
                for name in obj.column_names
            )
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _ObjRef(
            cls=type(obj),
            state=tuple(
                (f.name, _encode(getattr(obj, f.name), arrays))
                for f in dataclasses.fields(obj)
                if f.init
            ),
        )
    if isinstance(obj, dict):
        return {k: _encode(v, arrays) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(_encode(v, arrays) for v in obj)
    if isinstance(obj, list):
        return [_encode(v, arrays) for v in obj]
    return obj


def _decode(obj: object, arrays: dict[str, np.ndarray]) -> object:
    """Inverse of :func:`_encode`."""
    if isinstance(obj, _ArrayRef):
        return arrays[f"a{obj.index}"]
    if isinstance(obj, _TableRef):
        return Table({name: _decode(ref, arrays) for name, ref in obj.columns})
    if isinstance(obj, _ObjRef):
        return obj.cls(**{name: _decode(v, arrays) for name, v in obj.state})
    if isinstance(obj, dict):
        return {k: _decode(v, arrays) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(_decode(v, arrays) for v in obj)
    if isinstance(obj, list):
        return [_decode(v, arrays) for v in obj]
    return obj


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/put counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    errors: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "errors": self.errors,
            "quarantined": self.quarantined,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(**self.as_dict())

    def delta(self, since: "CacheStats") -> dict[str, int]:
        """Counter increments since an earlier snapshot."""
        now = self.as_dict()
        then = since.as_dict()
        return {k: now[k] - then[k] for k in now}


_SKELETON = "skeleton.pkl"
_PAYLOAD = "data.npz"
_PAYLOAD_DIR = "payload"
_META = "meta.json"
_QUARANTINE = ".quarantine"


@dataclass(frozen=True)
class _DirEntry:
    """Skeleton marker for entries whose payload is a directory tree."""


def _dir_bytes(path: Path) -> int:
    """Total size of every regular file under ``path``, recursively.

    Entries are no longer flat: a directory payload (``payload/`` from
    :meth:`DiskCache.put_path`, e.g. a spilled sharded table) nests
    files arbitrarily deep, and ``iterdir``-level ``st_size`` of a
    subdirectory reports the directory inode, not its contents — which
    would let multi-file entries blow straight through the LRU byte
    budget.
    """
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())

#: How many corrupted entries the quarantine keeps for inspection.
_QUARANTINE_KEEP = 8


class DiskCache:
    """LRU-evicting, atomically-written object cache on the filesystem.

    Parameters
    ----------
    root:
        Cache directory (created on first use).
    max_bytes:
        Byte budget across all entries; least-recently-used entries are
        evicted once exceeded. ``None`` disables the byte limit.
    max_entries:
        Entry-count budget, enforced the same way.
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = 4 * 1024**3,
        max_entries: int | None = 64,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = CacheStats()

    # -- public API -----------------------------------------------------------

    def get(self, key: str) -> object:
        """Return the cached object, or :data:`MISS`.

        Unreadable entries (truncated payload, bad pickle) are moved to
        the quarantine directory and reported as a miss so callers
        rebuild them. An entry evicted by a concurrent process between
        the existence check and the read is a plain miss.
        """
        entry = self._entry_dir(key)
        if not (entry / _SKELETON).exists():
            self.stats.misses += 1
            return MISS
        try:
            with open(entry / _SKELETON, "rb") as fh:
                skeleton = pickle.load(fh)
            arrays: dict[str, np.ndarray] = {}
            payload = entry / _PAYLOAD
            if payload.exists():
                with np.load(payload, allow_pickle=False) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            obj = _decode(skeleton, arrays)
        except FileNotFoundError:
            # Concurrent eviction won the race; nothing is wrong with
            # the (now absent) entry.
            self.stats.misses += 1
            return MISS
        except Exception:
            self.stats.errors += 1
            self.stats.misses += 1
            self._quarantine(entry)
            return MISS
        try:
            os.utime(entry)  # LRU touch
        except OSError:
            # Entry evicted concurrently after the read; data is intact.
            pass
        self.stats.hits += 1
        return obj

    def put(self, key: str, obj: object) -> None:
        """Store an object under ``key`` (atomic; last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        arrays: list[np.ndarray] = []
        skeleton = _encode(obj, arrays)
        tmp = Path(tempfile.mkdtemp(dir=self.root, prefix=".write-"))
        try:
            with open(tmp / _SKELETON, "wb") as fh:
                pickle.dump(skeleton, fh, protocol=pickle.HIGHEST_PROTOCOL)
            if arrays:
                np.savez_compressed(
                    tmp / _PAYLOAD,
                    **{f"a{i}": arr for i, arr in enumerate(arrays)},
                )
            nbytes = _dir_bytes(tmp)
            (tmp / _META).write_text(
                json.dumps({"key": key, "nbytes": nbytes}) + "\n"
            )
            entry = self._entry_dir(key)
            entry.parent.mkdir(parents=True, exist_ok=True)
            if entry.exists():
                # If the publish below fails, a crash may resurrect the
                # removed entry — a complete, equivalent cache value, so
                # the un-fsync'd removal is an accepted risk here.
                shutil.rmtree(entry, ignore_errors=True)  # reprolint: disable=REP802
            publish_atomically(tmp, entry)
        except OSError:
            # A concurrent writer renamed first; its entry is equivalent.
            shutil.rmtree(tmp, ignore_errors=True)
        else:
            self.stats.puts += 1
        self._evict(keep=self._entry_dir(key))

    def put_path(self, key: str, src: str | Path, *, move: bool = False) -> None:
        """Store a directory tree under ``key`` (atomic; last writer wins).

        The tree lands as the entry's ``payload/`` directory and the
        skeleton holds a marker, so the entry scans, touches and evicts
        exactly like an object entry — including byte accounting of
        every file in the tree. With ``move=True`` the source directory
        is renamed into the entry (same filesystem, no copy); the
        caller's ``src`` path is gone afterwards. Retrieve with
        :meth:`get_path`, not :meth:`get`.
        """
        src = Path(src)
        if not src.is_dir():
            raise ValueError(f"source is not a directory: {src}")
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=self.root, prefix=".write-"))
        try:
            with open(tmp / _SKELETON, "wb") as fh:
                pickle.dump(_DirEntry(), fh, protocol=pickle.HIGHEST_PROTOCOL)
            dest = tmp / _PAYLOAD_DIR
            if move:
                os.rename(src, dest)
            else:
                shutil.copytree(src, dest)
            nbytes = _dir_bytes(tmp)
            (tmp / _META).write_text(
                json.dumps({"key": key, "nbytes": nbytes}) + "\n"
            )
            entry = self._entry_dir(key)
            entry.parent.mkdir(parents=True, exist_ok=True)
            if entry.exists():
                # If the publish below fails, a crash may resurrect the
                # removed entry — a complete, equivalent cache value, so
                # the un-fsync'd removal is an accepted risk here.
                shutil.rmtree(entry, ignore_errors=True)  # reprolint: disable=REP802
            publish_atomically(tmp, entry)
        except OSError:
            # A concurrent writer renamed first; its entry is equivalent.
            shutil.rmtree(tmp, ignore_errors=True)
        else:
            self.stats.puts += 1
        self._evict(keep=self._entry_dir(key))

    def get_path(self, key: str) -> Path | _Miss:
        """Path of a directory entry's payload, or :data:`MISS`.

        The returned path stays valid until the entry is evicted;
        callers holding open memory maps into it should finish one
        analysis pass before triggering further cache writes.
        """
        entry = self._entry_dir(key)
        payload = entry / _PAYLOAD_DIR
        if not (entry / _SKELETON).exists():
            self.stats.misses += 1
            return MISS
        if not payload.is_dir():
            self.stats.errors += 1
            self.stats.misses += 1
            self._quarantine(entry)
            return MISS
        try:
            os.utime(entry)  # LRU touch
        except OSError:
            pass
        self.stats.hits += 1
        return payload

    def __contains__(self, key: str) -> bool:
        return (self._entry_dir(key) / _SKELETON).exists()

    def entries(self) -> list[str]:
        """Keys currently stored (unordered)."""
        if not self.root.is_dir():
            return []
        return [d.name for d, _, _ in self._scan()]

    def total_bytes(self) -> int:
        """Bytes used across all entries."""
        return sum(size for _, _, size in self._scan())

    def clear(self) -> None:
        """Delete every entry (removals fsynced so they cannot resurrect)."""
        for entry, _, _ in self._scan():
            try:
                remove_durable(entry)
            except OSError:
                pass

    # -- internals ------------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def quarantine_dir(self) -> Path:
        """Where corrupted entries are parked for inspection."""
        return self.root / _QUARANTINE

    def quarantined_entries(self) -> list[str]:
        """Keys currently held in quarantine (unordered)."""
        qdir = self.quarantine_dir()
        if not qdir.is_dir():
            return []
        return [d.name for d in qdir.iterdir() if d.is_dir()]

    def quarantine_entry(self, key: str) -> bool:
        """Park a corrupted entry by key; ``True`` if one was moved.

        Public hook for callers that discover corruption *inside* a
        payload the cache already served — e.g. a sharded table whose
        column digest no longer matches (:class:`ShardIntegrityError`
        from ``repro.core.shard``). The entry is moved into quarantine
        so the next ``get_path`` misses and the payload is re-derived.
        """
        entry = self._entry_dir(key)
        if not entry.is_dir():
            return False
        self.stats.errors += 1
        self._quarantine(entry)
        return True

    def _quarantine(self, entry: Path) -> None:
        """Move a corrupted entry aside instead of serving it again.

        The moved entry keeps its files for post-mortem inspection; the
        quarantine is pruned to the most recent few so corruption storms
        cannot grow without bound. If the move itself fails (another
        process already moved or deleted the entry) the entry is simply
        removed.
        """
        qdir = self.quarantine_dir()
        dest = qdir / entry.name
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            if dest.exists():
                # Quarantine slots are junk by definition; a resurrected
                # stale slot is re-pruned, so durability is not needed.
                shutil.rmtree(dest, ignore_errors=True)  # reprolint: disable=REP802
            # payload_synced: the entry is suspected-corrupt, do not walk
            # and fsync its content — only the move itself must be
            # durable (in both parent directories, so the bad entry
            # cannot resurrect in the live tree after a crash).
            publish_atomically(entry, dest, payload_synced=True)
        except OSError:
            try:
                remove_durable(entry)
            except OSError:
                pass
        self.stats.quarantined += 1
        try:
            parked = sorted(
                (d for d in qdir.iterdir() if d.is_dir()),
                key=lambda d: (d.stat().st_mtime, d.name),
            )
        except OSError:
            return
        for stale in parked[: max(0, len(parked) - _QUARANTINE_KEEP)]:
            try:
                remove_durable(stale)
            except OSError:
                pass

    def _scan(self) -> list[tuple[Path, float, int]]:
        """(entry dir, mtime, payload bytes) for every complete entry."""
        found: list[tuple[Path, float, int]] = []
        if not self.root.is_dir():
            return found
        for shard in self.root.iterdir():
            if not shard.is_dir() or shard.name.startswith("."):
                continue
            for entry in shard.iterdir():
                if not (entry / _SKELETON).exists():
                    continue
                try:
                    mtime = entry.stat().st_mtime
                    size = _dir_bytes(entry)
                except OSError:
                    continue
                found.append((entry, mtime, size))
        return found

    def _evict(self, keep: Path | None = None) -> None:
        """Drop least-recently-used entries beyond the size budgets."""
        if self.max_bytes is None and self.max_entries is None:
            return
        entries = sorted(self._scan(), key=lambda e: (e[1], e[0].name))
        total = sum(size for _, _, size in entries)
        count = len(entries)
        for entry, _, size in entries:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if keep is not None and entry == keep:
                continue
            try:
                remove_durable(entry)
            except OSError:
                pass
            self.stats.evictions += 1
            total -= size
            count -= 1
