"""Submission-rate statistics and Jain's fairness index (Table I).

The paper evaluates how bursty job submission is by counting jobs per
hour and summarizing the hourly counts with min/mean/max plus Jain's
fairness index (Eq. (3)): ``f(x) = (sum x_i)^2 / (n * sum x_i^2)``.
A fairness of 1 means perfectly even hourly rates; strongly diurnal
Grid workloads score near 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "jain_fairness",
    "hourly_counts",
    "HourlyCountsAccumulator",
    "SubmissionRateStats",
    "submission_rate_stats",
]

HOUR = 3600.0


def jain_fairness(x: np.ndarray) -> float:
    """Jain's fairness index of a non-negative sample (Eq. (3))."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("input must be non-empty")
    if np.any(x < 0):
        raise ValueError("fairness index requires non-negative values")
    denom = x.size * np.sum(x * x)
    if denom == 0:
        return 1.0  # all-zero allocation is trivially even
    return float(np.sum(x) ** 2 / denom)


def hourly_counts(submit_times: np.ndarray, horizon: float | None = None) -> np.ndarray:
    """Number of submissions in each wall-clock hour of the trace."""
    submit_times = np.asarray(submit_times, dtype=np.float64)
    if submit_times.size == 0:
        raise ValueError("submit_times must be non-empty")
    if np.any(submit_times < 0):
        raise ValueError("submission times must be non-negative")
    end = float(horizon) if horizon is not None else float(submit_times.max())
    n_hours = max(int(np.ceil(end / HOUR)), 1)
    bins = np.floor(submit_times / HOUR).astype(np.int64)
    bins = np.minimum(bins, n_hours - 1)  # a submit exactly at the horizon
    return np.bincount(bins, minlength=n_hours).astype(np.int64)


class HourlyCountsAccumulator:
    """Mergeable hourly submission counts over a fixed horizon.

    Streaming counterpart of :func:`hourly_counts` with an explicit
    horizon: each chunk contributes an ``int64`` partial bincount over
    the same fixed number of hour bins, and integer addition makes the
    merged counts exactly equal to the batch counts for any chunking
    and any merge grouping. Derived statistics (Table I via
    :func:`submission_rate_stats`, Jain fairness) are then computed
    from an identical counts array.
    """

    def __init__(self, horizon: float) -> None:
        end = float(horizon)
        if not end > 0:
            raise ValueError("horizon must be positive")
        self._n_hours = max(int(np.ceil(end / HOUR)), 1)
        self._counts = np.zeros(self._n_hours, dtype=np.int64)
        self._n_values = 0

    def add(self, submit_times: np.ndarray) -> None:
        """Fold one chunk of submission times into the counts."""
        submit_times = np.asarray(submit_times, dtype=np.float64)
        if submit_times.size == 0:
            return
        if np.any(submit_times < 0):
            raise ValueError("submission times must be non-negative")
        bins = np.floor(submit_times / HOUR).astype(np.int64)
        bins = np.minimum(bins, self._n_hours - 1)
        self._counts += np.bincount(bins, minlength=self._n_hours)
        self._n_values += submit_times.size

    def merge(self, other: "HourlyCountsAccumulator") -> "HourlyCountsAccumulator":
        """Add another accumulator's counts (same horizon required)."""
        if other._n_hours != self._n_hours:
            raise ValueError("cannot merge accumulators with different horizons")
        self._counts += other._counts
        self._n_values += other._n_values
        return self

    @property
    def n_values(self) -> int:
        return self._n_values

    def counts(self) -> np.ndarray:
        """The hourly counts array (matches :func:`hourly_counts`)."""
        if self._n_values == 0:
            raise ValueError("submit_times must be non-empty")
        return self._counts.copy()

    def finalize(self) -> "SubmissionRateStats":
        """Table I row for everything added so far."""
        counts = self.counts()
        return SubmissionRateStats(
            max_per_hour=int(counts.max()),
            avg_per_hour=float(counts.mean()),
            min_per_hour=int(counts.min()),
            fairness=jain_fairness(counts),
        )


@dataclass(frozen=True)
class SubmissionRateStats:
    """Row of Table I: per-hour submission-rate summary for one system."""

    max_per_hour: int
    avg_per_hour: float
    min_per_hour: int
    fairness: float


def submission_rate_stats(
    submit_times: np.ndarray, horizon: float | None = None
) -> SubmissionRateStats:
    """Compute the Table I row for a stream of submission times."""
    counts = hourly_counts(submit_times, horizon)
    return SubmissionRateStats(
        max_per_hour=int(counts.max()),
        avg_per_hour=float(counts.mean()),
        min_per_hour=int(counts.min()),
        fairness=jain_fairness(counts),
    )
