"""Submission-rate statistics and Jain's fairness index (Table I).

The paper evaluates how bursty job submission is by counting jobs per
hour and summarizing the hourly counts with min/mean/max plus Jain's
fairness index (Eq. (3)): ``f(x) = (sum x_i)^2 / (n * sum x_i^2)``.
A fairness of 1 means perfectly even hourly rates; strongly diurnal
Grid workloads score near 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["jain_fairness", "hourly_counts", "SubmissionRateStats", "submission_rate_stats"]

HOUR = 3600.0


def jain_fairness(x: np.ndarray) -> float:
    """Jain's fairness index of a non-negative sample (Eq. (3))."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("input must be non-empty")
    if np.any(x < 0):
        raise ValueError("fairness index requires non-negative values")
    denom = x.size * np.sum(x * x)
    if denom == 0:
        return 1.0  # all-zero allocation is trivially even
    return float(np.sum(x) ** 2 / denom)


def hourly_counts(submit_times: np.ndarray, horizon: float | None = None) -> np.ndarray:
    """Number of submissions in each wall-clock hour of the trace."""
    submit_times = np.asarray(submit_times, dtype=np.float64)
    if submit_times.size == 0:
        raise ValueError("submit_times must be non-empty")
    if np.any(submit_times < 0):
        raise ValueError("submission times must be non-negative")
    end = float(horizon) if horizon is not None else float(submit_times.max())
    n_hours = max(int(np.ceil(end / HOUR)), 1)
    bins = np.floor(submit_times / HOUR).astype(np.int64)
    bins = np.minimum(bins, n_hours - 1)  # a submit exactly at the horizon
    return np.bincount(bins, minlength=n_hours).astype(np.int64)


@dataclass(frozen=True)
class SubmissionRateStats:
    """Row of Table I: per-hour submission-rate summary for one system."""

    max_per_hour: int
    avg_per_hour: float
    min_per_hour: int
    fairness: float


def submission_rate_stats(
    submit_times: np.ndarray, horizon: float | None = None
) -> SubmissionRateStats:
    """Compute the Table I row for a stream of submission times."""
    counts = hourly_counts(submit_times, horizon)
    return SubmissionRateStats(
        max_per_hour=int(counts.max()),
        avg_per_hour=float(counts.mean()),
        min_per_hour=int(counts.min()),
        fairness=jain_fairness(counts),
    )
