"""Wall/CPU stage timing and counters for the experiment pipeline.

Analysis outputs must stay a pure function of ``(inputs, seed)`` —
REP501 bans wall-clock reads in result-producing code. Timing the
pipeline is the one legitimate exception: durations are observability
metadata, never part of a rendered result, so the clock reads below are
explicitly suppressed. Everything recorded here flows to stderr
footers and ``--json`` timing reports, not to experiment output.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from .report import render_table

__all__ = ["RECOVERY_COUNTERS", "StageStats", "Timings", "render_timings"]

#: Counters the supervised runner and disk cache emit while recovering
#: from faults (retries, worker crashes, timeouts, requeued attempts,
#: quarantined cache entries, ...). They are rendered on their own
#: ``recovery:`` footer line so a degraded-but-successful run is
#: visible at a glance instead of buried among cache statistics.
RECOVERY_COUNTERS = (
    "retries",
    "worker_crashes",
    "experiment_timeouts",
    "requeued",
    "cancelled",
    "resumed",
    "faults_injected",
    "cache_quarantined",
    "cache_errors",
    # Out-of-core layer (sharded tables + supervised map-reduce).
    "shards_quarantined",
    "shards_rederived",
    "spills_resumed",
    "spill_shards_reused",
    "mapreduce_retries",
    "mapreduce_respawns",
    "mapreduce_crashes",
    "mapreduce_block_timeouts",
    "mapreduce_stragglers",
    "mapreduce_inline",
)


@dataclass
class StageStats:
    """Accumulated wall/CPU time of one named pipeline stage."""

    calls: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0

    def add(self, wall_s: float, cpu_s: float) -> None:
        self.calls += 1
        self.wall_s += wall_s
        self.cpu_s += cpu_s

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
        }


class Timings:
    """Per-stage wall/CPU durations plus named event counters.

    Stages nest freely (``with timings.stage("total"): ...``) and the
    same stage name accumulates across entries. Counters record discrete
    events (cache hits, dataset builds). Instances merge, so per-worker
    measurements can be folded into one run-level report.
    """

    def __init__(self) -> None:
        self.stages: dict[str, StageStats] = {}
        self.counters: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block, accumulating into the named stage."""
        wall0 = time.perf_counter()  # reprolint: disable=REP501
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall1 = time.perf_counter()  # reprolint: disable=REP501
            cpu1 = time.process_time()
            self.record(name, wall1 - wall0, cpu1 - cpu0)

    def record(self, name: str, wall_s: float, cpu_s: float) -> None:
        """Add one timed interval to the named stage."""
        self.stages.setdefault(name, StageStats()).add(wall_s, cpu_s)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named event counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def merge(self, other: "Timings", *, counters: bool = True) -> None:
        """Fold another instance's stages (and counters) into this one."""
        for name, stats in other.stages.items():
            mine = self.stages.setdefault(name, StageStats())
            mine.calls += stats.calls
            mine.wall_s += stats.wall_s
            mine.cpu_s += stats.cpu_s
        if counters:
            for name, n in other.counters.items():
                self.count(name, n)

    def merge_counts(self, counters: dict[str, int]) -> None:
        """Fold a plain counter mapping into this instance."""
        for name, n in counters.items():
            self.count(name, n)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view: stage timings plus counters."""
        return {
            "stages": {
                name: stats.as_dict() for name, stats in self.stages.items()
            },
            "counters": dict(sorted(self.counters.items())),
        }


def render_timings(timings: Timings, title: str = "timing:") -> str:
    """Human-readable footer table of stages and counters."""
    rows = [
        (name, stats.calls, f"{stats.wall_s:.3f}", f"{stats.cpu_s:.3f}")
        for name, stats in timings.stages.items()
    ]
    parts = [render_table(("stage", "calls", "wall s", "cpu s"), rows, title=title)]
    plain = {
        name: n
        for name, n in timings.counters.items()
        if name not in RECOVERY_COUNTERS
    }
    if plain:
        counts = ", ".join(f"{name}={n}" for name, n in sorted(plain.items()))
        parts.append(f"counters: {counts}")
    recovery = {
        name: timings.counters[name]
        for name in RECOVERY_COUNTERS
        if timings.counters.get(name)
    }
    if recovery:
        counts = ", ".join(f"{name}={n}" for name, n in recovery.items())
        parts.append(f"recovery: {counts}")
    return "\n".join(parts)
