"""Distribution-distance metrics for cross-system comparison.

The paper compares systems by overlaying CDFs (Figs. 3, 5, 6); these
metrics make the visual comparison quantitative: the two-sample
Kolmogorov-Smirnov distance, the area between CDFs (a robust
first-order Wasserstein on a bounded range), and stochastic-dominance
checks ("Google's CDF lies left of every Grid CDF").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ks_two_sample",
    "cdf_area_distance",
    "stochastically_smaller",
]


def _merged_grid(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.unique(np.concatenate([a, b]))


def _ecdf_at(sample: np.ndarray, grid: np.ndarray) -> np.ndarray:
    sample = np.sort(sample)
    return np.searchsorted(sample, grid, side="right") / sample.size


def _validate(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("samples must be non-empty")
    if np.any(~np.isfinite(a)) or np.any(~np.isfinite(b)):
        raise ValueError("samples must be finite")
    return a, b


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample KS distance: sup |F_a - F_b|."""
    a, b = _validate(a, b)
    grid = _merged_grid(a, b)
    return float(np.abs(_ecdf_at(a, grid) - _ecdf_at(b, grid)).max())


def cdf_area_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Integral of |F_a - F_b| over the merged support.

    Equals the first-order Wasserstein distance between the empirical
    distributions; same units as the data.
    """
    a, b = _validate(a, b)
    grid = _merged_grid(a, b)
    if grid.size == 1:
        return 0.0
    gaps = np.diff(grid)
    diff = np.abs(_ecdf_at(a, grid) - _ecdf_at(b, grid))[:-1]
    return float(np.dot(diff, gaps))


def stochastically_smaller(
    a: np.ndarray, b: np.ndarray, tolerance: float = 0.0
) -> bool:
    """True when F_a >= F_b everywhere (a is stochastically smaller).

    ``tolerance`` allows F_a to dip below F_b by at most that much —
    useful for noisy empirical CDFs that cross microscopically.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    a, b = _validate(a, b)
    grid = _merged_grid(a, b)
    return bool(np.all(_ecdf_at(a, grid) >= _ecdf_at(b, grid) - tolerance))
