"""Deterministic retry backoff shared by every supervised executor.

Both the experiment supervisor (:mod:`repro.experiments.supervisor`)
and the shard map-reduce pool (:mod:`repro.core.mapreduce`) retry
transient failures. Their backoff must be reproducible — a faulted run
replays with the same retry schedule — so jitter is *seeded*, never
sampled from the wall clock: the delay is a pure function of
``(seed, token, attempt)``.
"""

from __future__ import annotations

import hashlib

__all__ = ["backoff_delay"]


def backoff_delay(
    seed: int,
    token: str,
    attempt: int,
    *,
    base: float = 0.25,
    cap: float = 30.0,
) -> float:
    """Deterministic capped exponential backoff with seeded jitter.

    A pure function of ``(seed, token, attempt)``: the raw delay
    doubles per failed attempt up to ``cap``, then jitter drawn from a
    SHA-256 of the inputs spreads it over ``[raw/2, raw)`` so
    concurrent retries decorrelate without any wall-clock RNG. The
    ``token`` names the retried unit (an experiment id, a shard-block
    key) so distinct units decorrelate under one seed.
    """
    raw = min(cap, base * (2.0 ** max(0, attempt - 1)))
    digest = hashlib.sha256(
        f"{seed}:{token}:{attempt}".encode("utf-8")
    ).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
    return raw * (0.5 + 0.5 * jitter)
