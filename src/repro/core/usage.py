"""Per-job resource-utilization metrics (Sec. III.4, Fig. 6).

Implements Eq. (4) of the paper — CPU usage as cumulative per-processor
execution time over wall-clock time — and the memory-usage convention
used in Fig. 6(b), where Google's normalized memory values are rescaled
by an assumed node capacity (32 GB or 64 GB) for comparison against the
absolute values in Grid traces.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cpu_usage_eq4",
    "memory_usage_mb",
    "GB",
]

#: Megabytes per gigabyte (the unit Fig. 6(b)'s x-axis is plotted in is MB
#: in the hundreds, consistent with "Memory Utilization" up to ~1000).
GB = 1024.0


def cpu_usage_eq4(
    num_cpus: np.ndarray, exe_time_per_cpu: np.ndarray, wall_clock: np.ndarray
) -> np.ndarray:
    """Eq. (4): ``num_cpus * exe_time_per_cpu / wall_clock``.

    A sequential, fully busy job scores 1.0; an n-way parallel fully
    busy job scores n; interactive jobs that mostly wait score < 1.
    """
    num_cpus = np.asarray(num_cpus, dtype=np.float64)
    exe = np.asarray(exe_time_per_cpu, dtype=np.float64)
    wall = np.asarray(wall_clock, dtype=np.float64)
    if np.any(wall <= 0):
        raise ValueError("wall-clock time must be positive")
    if np.any(num_cpus <= 0):
        raise ValueError("processor counts must be positive")
    if np.any(exe < 0):
        raise ValueError("execution time must be non-negative")
    usage = num_cpus * exe / wall
    return usage


def memory_usage_mb(
    normalized_mem: np.ndarray, max_capacity_gb: float
) -> np.ndarray:
    """Rescale normalized [0, 1] memory usage to megabytes.

    Mirrors Fig. 6(b)'s "MaxCap=32GB / MaxCap=64GB" assumption for the
    Google trace, whose memory values are only released normalized.
    """
    normalized = np.asarray(normalized_mem, dtype=np.float64)
    if max_capacity_gb <= 0:
        raise ValueError("max_capacity_gb must be positive")
    if normalized.size and (normalized.min() < 0 or normalized.max() > 1 + 1e-9):
        raise ValueError("normalized memory must lie in [0, 1]")
    return normalized * max_capacity_gb * GB
