"""Column-oriented table container backed by NumPy arrays.

A :class:`Table` is a thin, schema-checked mapping from column name to a
1-D NumPy array. All columns share the same length. The container is the
common currency between the trace generators, the simulator, and the
analysis code; keeping it columnar lets every analysis be a vectorized
NumPy expression (see the hpc-parallel optimization guidance).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Table", "concat_tables"]


class Table:
    """Fixed-schema, column-oriented table.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array-like. All columns must have
        equal length.
    schema:
        Optional mapping of column name to NumPy dtype. When given, the
        table must contain exactly the schema's columns and each column
        is cast to the schema dtype.
    """

    __slots__ = ("_columns",)

    def __init__(
        self,
        columns: Mapping[str, Sequence | np.ndarray],
        schema: Mapping[str, np.dtype] | None = None,
    ) -> None:
        if schema is not None:
            missing = set(schema) - set(columns)
            extra = set(columns) - set(schema)
            if missing or extra:
                raise ValueError(
                    f"columns do not match schema: missing={sorted(missing)}, "
                    f"extra={sorted(extra)}"
                )
        data: dict[str, np.ndarray] = {}
        for name, values in columns.items():
            arr = np.asarray(values)
            if schema is not None:
                arr = arr.astype(schema[name], copy=False)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got ndim={arr.ndim}")
            data[name] = arr
        lengths = {name: len(arr) for name, arr in data.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"columns have unequal lengths: {lengths}")
        self._columns = data

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._columns[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if set(self._columns) != set(other._columns):
            return False
        return all(
            np.array_equal(self._columns[k], other._columns[k], equal_nan=True)
            for k in self._columns
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"{k}:{v.dtype}" for k, v in self._columns.items())
        return f"Table(rows={len(self)}, columns=[{cols}])"

    # -- accessors -----------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    @property
    def num_rows(self) -> int:
        return len(self)

    def columns(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)

    def row(self, index: int) -> dict[str, object]:
        """Return one row as a plain dict (scalar values)."""
        return {name: arr[index].item() for name, arr in self._columns.items()}

    # -- transformations ------------------------------------------------------

    def select(self, mask_or_indices: np.ndarray) -> "Table":
        """Row subset by boolean mask or integer index array."""
        sel = np.asarray(mask_or_indices)
        return Table({name: arr[sel] for name, arr in self._columns.items()})

    def sort_by(self, *names: str) -> "Table":
        """Stable sort by the given columns (first name is primary key)."""
        if not names:
            raise ValueError("sort_by requires at least one column name")
        order = np.lexsort([self._columns[name] for name in reversed(names)])
        return self.select(order)

    def with_columns(self, **new_columns: np.ndarray) -> "Table":
        """Return a new table with columns added or replaced."""
        merged = dict(self._columns)
        for name, values in new_columns.items():
            arr = np.asarray(values)
            merged[name] = arr
        return Table(merged)

    def drop(self, *names: str) -> "Table":
        """Return a new table without the given columns."""
        unknown = set(names) - set(self._columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        return Table({k: v for k, v in self._columns.items() if k not in names})

    def head(self, n: int = 5) -> "Table":
        return self.select(np.arange(min(n, len(self))))

    # -- grouping -------------------------------------------------------------

    def group_indices(self, key: str) -> dict[object, np.ndarray]:
        """Map each distinct key value to the row indices holding it.

        Implemented with a single argsort, so grouping 25M rows stays
        O(n log n) with no Python-level per-row work.
        """
        keys = self._columns[key]
        if len(keys) == 0:
            return {}
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(keys)]))
        return {
            sorted_keys[s].item(): order[s:e] for s, e in zip(starts, ends)
        }


def concat_tables(tables: Sequence[Table]) -> Table:
    """Concatenate tables with identical column sets (row-wise)."""
    if not tables:
        raise ValueError("concat_tables requires at least one table")
    names = set(tables[0].column_names)
    for t in tables[1:]:
        if set(t.column_names) != names:
            raise ValueError("all tables must share the same columns")
    return Table(
        {
            name: np.concatenate([t[name] for t in tables])
            for name in tables[0].column_names
        }
    )
