"""Distribution fitting and model selection for workload samples.

The paper's conclusion announces a search for the "best-fit" load model
as future work; this module provides it for the workload side: maximum-
likelihood fits of the standard candidates (exponential, lognormal,
Weibull, bounded Pareto), Kolmogorov-Smirnov goodness-of-fit, and
AIC-based model selection. The fitted shapes can be fed straight back
into :mod:`repro.core.distributions` (the sampling toolkit used by
:mod:`repro.synth`) to close the loop between characterization and
synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, stats

from .distributions import (
    BoundedPareto,
    Distribution,
    Exponential,
    LogNormal,
)

__all__ = [
    "FittedModel",
    "fit_exponential",
    "fit_lognormal",
    "fit_weibull",
    "fit_bounded_pareto",
    "fit_best",
    "ks_statistic",
    "CANDIDATE_FAMILIES",
]


@dataclass(frozen=True)
class FittedModel:
    """One fitted candidate distribution.

    Attributes
    ----------
    family:
        Model family name ("exponential", "lognormal", ...).
    params:
        Fitted parameters, family-specific.
    log_likelihood:
        Total log-likelihood at the fit.
    aic:
        Akaike information criterion (lower is better).
    ks:
        Kolmogorov-Smirnov distance between sample and fitted CDF.
    distribution:
        Sampleable :class:`~repro.core.distributions.Distribution`
        equivalent, when the family maps onto the synthesis toolkit
        (None for Weibull).
    """

    family: str
    params: dict[str, float]
    log_likelihood: float
    aic: float
    ks: float
    distribution: Distribution | None


def _check_sample(sample: np.ndarray) -> np.ndarray:
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(~np.isfinite(sample)) or np.any(sample <= 0):
        raise ValueError("samples must be finite and positive")
    return sample


def ks_statistic(sample: np.ndarray, cdf) -> float:
    """Two-sided KS distance between an empirical sample and a CDF."""
    sample = np.sort(np.asarray(sample, dtype=np.float64))
    n = sample.size
    theo = np.asarray(cdf(sample), dtype=np.float64)
    upper = np.arange(1, n + 1) / n - theo
    lower = theo - np.arange(0, n) / n
    return float(max(upper.max(), lower.max()))


def fit_exponential(sample: np.ndarray) -> FittedModel:
    """MLE exponential fit: rate = 1/mean."""
    sample = _check_sample(sample)
    mean = float(sample.mean())
    loglik = float(-sample.size * np.log(mean) - sample.sum() / mean)
    ks = ks_statistic(sample, lambda x: 1.0 - np.exp(-x / mean))
    return FittedModel(
        family="exponential",
        params={"mean": mean},
        log_likelihood=loglik,
        aic=2 * 1 - 2 * loglik,
        ks=ks,
        distribution=Exponential(mean),
    )


def fit_lognormal(sample: np.ndarray) -> FittedModel:
    """MLE lognormal fit in log space."""
    sample = _check_sample(sample)
    logs = np.log(sample)
    mu = float(logs.mean())
    sigma = float(logs.std())
    if sigma <= 0:
        sigma = 1e-9
    loglik = float(
        -logs.sum()
        - sample.size * np.log(sigma * np.sqrt(2 * np.pi))
        - ((logs - mu) ** 2).sum() / (2 * sigma**2)
    )
    dist = stats.lognorm(s=sigma, scale=np.exp(mu))
    ks = ks_statistic(sample, dist.cdf)
    return FittedModel(
        family="lognormal",
        params={"median": float(np.exp(mu)), "sigma": sigma},
        log_likelihood=loglik,
        aic=2 * 2 - 2 * loglik,
        ks=ks,
        distribution=LogNormal(median=float(np.exp(mu)), sigma=sigma),
    )


def fit_weibull(sample: np.ndarray) -> FittedModel:
    """MLE Weibull fit via scipy (location fixed at 0)."""
    sample = _check_sample(sample)
    shape, _loc, scale = stats.weibull_min.fit(sample, floc=0.0)
    dist = stats.weibull_min(c=shape, scale=scale)
    loglik = float(dist.logpdf(sample).sum())
    ks = ks_statistic(sample, dist.cdf)
    return FittedModel(
        family="weibull",
        params={"shape": float(shape), "scale": float(scale)},
        log_likelihood=loglik,
        aic=2 * 2 - 2 * loglik,
        ks=ks,
        distribution=None,
    )


def fit_bounded_pareto(sample: np.ndarray) -> FittedModel:
    """MLE bounded-Pareto fit with bounds at the sample extremes.

    The bounds are pinned to ``[min(sample), max(sample)]`` (their MLE)
    and alpha maximized numerically — the textbook estimator for
    truncated power laws.
    """
    sample = _check_sample(sample)
    low = float(sample.min())
    high = float(sample.max())
    if high <= low:
        raise ValueError("sample must span a positive range")
    logs = np.log(sample)
    n = sample.size
    log_l, log_h = np.log(low), np.log(high)

    def neg_loglik(alpha: float) -> float:
        if alpha <= 1e-9:
            return np.inf
        norm = 1.0 - (low / high) ** alpha
        return -(
            n * np.log(alpha)
            + n * alpha * log_l
            - (alpha + 1.0) * logs.sum()
            - n * np.log(norm)
        )

    result = optimize.minimize_scalar(
        neg_loglik, bounds=(1e-6, 20.0), method="bounded"
    )
    alpha = float(result.x)
    loglik = -float(result.fun)

    def cdf(x: np.ndarray) -> np.ndarray:
        x = np.clip(x, low, high)
        la, ha = low**alpha, high**alpha
        return (1.0 - la / x**alpha) / (1.0 - la / ha)

    ks = ks_statistic(sample, cdf)
    return FittedModel(
        family="bounded_pareto",
        params={"alpha": alpha, "low": low, "high": high},
        log_likelihood=loglik,
        aic=2 * 3 - 2 * loglik,
        ks=ks,
        distribution=BoundedPareto(alpha=alpha, low=low, high=high),
    )


CANDIDATE_FAMILIES = {
    "exponential": fit_exponential,
    "lognormal": fit_lognormal,
    "weibull": fit_weibull,
    "bounded_pareto": fit_bounded_pareto,
}


def fit_best(
    sample: np.ndarray, families: tuple[str, ...] | None = None
) -> list[FittedModel]:
    """Fit all candidate families, best (lowest AIC) first.

    Families that fail to fit (degenerate samples) are skipped; at
    least one fit must succeed.
    """
    names = families if families is not None else tuple(CANDIDATE_FAMILIES)
    fits: list[FittedModel] = []
    for name in names:
        try:
            fitter = CANDIDATE_FAMILIES[name]
        except KeyError:
            raise KeyError(
                f"unknown family {name!r}; available: "
                f"{sorted(CANDIDATE_FAMILIES)}"
            ) from None
        try:
            fits.append(fitter(sample))
        except (ValueError, FloatingPointError):
            continue
    if not fits:
        raise ValueError("no candidate family could be fitted")
    return sorted(fits, key=lambda f: f.aic)
