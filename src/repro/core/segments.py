"""Run-length segmentation of discretized time series.

Section IV of the paper repeatedly asks: *for how long does a machine
stay in the same state?* — where "state" is either the running-queue
interval ([0,9], [10,19], ...; Fig. 9) or a usage-level bucket ([0,0.2),
[0.2,0.4), ...; Tables II-III). This module discretizes a sampled
series into levels and extracts the maximal constant-level segments
with their durations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Segments",
    "discretize",
    "constant_segments",
    "level_durations",
    "LevelRunAccumulator",
    "DEFAULT_USAGE_LEVELS",
    "QUEUE_STATE_LEVELS",
    "usage_level_labels",
]

#: The paper's five equal usage intervals: [0,0.2), ..., [0.8,1].
DEFAULT_USAGE_LEVELS = np.array([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])

#: The paper's running-queue intervals: [0,9], [10,19], ..., [50,inf).
QUEUE_STATE_LEVELS = np.array([0.0, 10.0, 20.0, 30.0, 40.0, 50.0, np.inf])


def usage_level_labels(edges: np.ndarray = DEFAULT_USAGE_LEVELS) -> list[str]:
    """One label like ``'[0,0.2)'`` per level (``len(edges) - 1`` total)."""
    edges = np.asarray(edges, dtype=np.float64)
    labels = []
    for i in range(len(edges) - 1):
        hi = edges[i + 1]
        if np.isinf(hi):
            labels.append(f"[{edges[i]:g},inf)")
        else:
            labels.append(f"[{edges[i]:g},{hi:g})")
    return labels


def discretize(values: np.ndarray, edges: np.ndarray = DEFAULT_USAGE_LEVELS) -> np.ndarray:
    """Map values to level indices given ascending interval edges.

    Level ``i`` covers ``[edges[i], edges[i+1])``; values at or above
    the last edge map to the final level, values below ``edges[0]``
    raise. With the default edges, a value of exactly 1.0 falls in the
    top level ``[0.8, 1]``, matching the paper's closed last interval.
    """
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be 1-D, ascending, with >= 2 entries")
    if values.size and values.min() < edges[0]:
        raise ValueError("values below the first edge")
    if edges.size <= 8 and values.size > edges.size:
        # Few edges (the usual five usage levels): summing comparisons
        # beats a binary search per element. Produces the identical
        # level code: the count of interior edges at or below a value
        # equals searchsorted(side="right") - 1 on ascending edges.
        idx = np.zeros(values.shape, dtype=np.int64)
        for edge in edges[1:-1]:
            idx += values >= edge
        return np.minimum(idx, len(edges) - 2)
    idx = np.searchsorted(edges, values, side="right") - 1
    return np.minimum(idx, len(edges) - 2).astype(np.int64)


@dataclass(frozen=True)
class Segments:
    """Maximal constant-level runs of a discretized series.

    Attributes
    ----------
    levels:
        Level index of each run.
    durations:
        Duration of each run (same units as the input timestamps).
    start_times:
        Start timestamp of each run.
    """

    levels: np.ndarray
    durations: np.ndarray
    start_times: np.ndarray

    def __len__(self) -> int:
        return len(self.levels)

    def for_level(self, level: int) -> np.ndarray:
        """Durations of runs at one level."""
        return self.durations[self.levels == level]


def constant_segments(times: np.ndarray, levels: np.ndarray) -> Segments:
    """Extract maximal runs of equal level from a sampled series.

    ``times`` are sample timestamps (ascending); sample ``i`` is assumed
    to hold until ``times[i+1]``. The final sample's duration is taken
    as the trailing sampling interval (median spacing), mirroring a
    fixed-period monitor.
    """
    times = np.asarray(times, dtype=np.float64)
    levels = np.asarray(levels)
    if times.shape != levels.shape:
        raise ValueError("times and levels must have equal shape")
    if times.size == 0:
        empty = np.empty(0)
        return Segments(empty.astype(np.int64), empty, empty)
    if times.size > 1 and np.any(np.diff(times) <= 0):
        raise ValueError("times must be strictly increasing")

    change = np.flatnonzero(levels[1:] != levels[:-1]) + 1
    starts = np.concatenate(([0], change))
    if times.size > 1:
        tail = float(np.median(np.diff(times)))
    else:
        tail = 1.0
    boundaries = np.concatenate((times[starts], [times[-1] + tail]))
    durations = np.diff(boundaries)
    return Segments(
        levels=levels[starts].astype(np.int64),
        durations=durations,
        start_times=times[starts],
    )


def level_durations(
    times: np.ndarray,
    values: np.ndarray,
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
) -> dict[int, np.ndarray]:
    """Durations of unchanged discretized level, keyed by level index.

    This is the quantity behind Tables II/III and Fig. 9: discretize the
    sampled series with ``edges`` and collect the run durations of every
    level (levels never visited map to empty arrays).
    """
    levels = discretize(values, edges)
    segments = constant_segments(np.asarray(times, dtype=np.float64), levels)
    n_levels = len(np.asarray(edges)) - 1
    return {lvl: segments.for_level(lvl) for lvl in range(n_levels)}


class LevelRunAccumulator:
    """Streaming :func:`level_durations` for one chunk-fed series.

    Feed consecutive time-ordered chunks of a single sampled series via
    :meth:`add` (or stitch adjacent-chunk accumulators with
    :meth:`merge`); :meth:`finalize` returns the per-level run
    durations. Rather than durations, the state holds the *start* of
    every maximal constant-level run — runs that span a chunk boundary
    fuse by dropping the later chunk's non-boundary first start — so
    finalization performs the same boundary ``np.diff`` on the same
    floats as the batch path. For a series whose trailing sampling
    interval equals ``tail`` (a fixed-period monitor: ``tail=period``),
    the result is bit-identical to :func:`level_durations` on the full
    series, for any chunking and any merge grouping. Memory is
    O(level runs), independent of sample count.
    """

    def __init__(
        self, edges: np.ndarray = DEFAULT_USAGE_LEVELS, *, tail: float
    ) -> None:
        self._edges = np.asarray(edges, dtype=np.float64)
        discretize(np.empty(0), self._edges)  # validate edges up front
        self._tail = float(tail)
        self._run_starts: list[np.ndarray] = []
        self._run_levels: list[np.ndarray] = []
        self._last_level: int | None = None
        self._last_time: float | None = None

    def add(self, times: np.ndarray, values: np.ndarray) -> None:
        """Fold the next chunk of the series (times strictly increasing)."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape or times.ndim != 1:
            raise ValueError("times and values must be 1-D with equal shape")
        if times.size == 0:
            return
        if np.any(np.diff(times) <= 0) or (
            self._last_time is not None and times[0] <= self._last_time
        ):
            raise ValueError("times must be strictly increasing")
        levels = discretize(values, self._edges)
        change = np.flatnonzero(levels[1:] != levels[:-1]) + 1
        starts = np.concatenate(([0], change))
        run_starts = times[starts]
        run_levels = levels[starts]
        if self._last_level is not None and run_levels[0] == self._last_level:
            # The chunk opens inside the run already in progress: its
            # first sample is not a run boundary.
            run_starts = run_starts[1:]
            run_levels = run_levels[1:]
        if run_starts.size:
            self._run_starts.append(run_starts)
            self._run_levels.append(run_levels)
        self._last_level = int(levels[-1])
        self._last_time = float(times[-1])

    def merge(self, other: "LevelRunAccumulator") -> "LevelRunAccumulator":
        """Stitch the accumulator of the adjacent later chunk range."""
        if other._tail != self._tail or not np.array_equal(
            other._edges, self._edges
        ):
            raise ValueError("cannot merge accumulators with different config")
        if other._last_time is None:
            return self
        if self._last_time is not None and (
            not other._run_starts
            or other._run_starts[0][0] <= self._last_time
        ):
            raise ValueError("times must be strictly increasing")
        starts = list(other._run_starts)
        levels = list(other._run_levels)
        if (
            self._last_level is not None
            and int(levels[0][0]) == self._last_level
        ):
            starts[0] = starts[0][1:]
            levels[0] = levels[0][1:]
            if starts[0].size == 0:
                starts = starts[1:]
                levels = levels[1:]
        self._run_starts.extend(starts)
        self._run_levels.extend(levels)
        self._last_level = other._last_level
        self._last_time = other._last_time
        return self

    def finalize(self) -> dict[int, np.ndarray]:
        """Per-level run durations of everything added so far."""
        n_levels = len(self._edges) - 1
        if self._last_time is None:
            return {lvl: np.empty(0) for lvl in range(n_levels)}
        starts = np.concatenate(self._run_starts)
        levels = np.concatenate(self._run_levels)
        boundaries = np.concatenate((starts, [self._last_time + self._tail]))
        durations = np.diff(boundaries)
        return {lvl: durations[levels == lvl] for lvl in range(n_levels)}
