"""Run-length segmentation of discretized time series.

Section IV of the paper repeatedly asks: *for how long does a machine
stay in the same state?* — where "state" is either the running-queue
interval ([0,9], [10,19], ...; Fig. 9) or a usage-level bucket ([0,0.2),
[0.2,0.4), ...; Tables II-III). This module discretizes a sampled
series into levels and extracts the maximal constant-level segments
with their durations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Segments",
    "discretize",
    "constant_segments",
    "level_durations",
    "DEFAULT_USAGE_LEVELS",
    "QUEUE_STATE_LEVELS",
    "usage_level_labels",
]

#: The paper's five equal usage intervals: [0,0.2), ..., [0.8,1].
DEFAULT_USAGE_LEVELS = np.array([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])

#: The paper's running-queue intervals: [0,9], [10,19], ..., [50,inf).
QUEUE_STATE_LEVELS = np.array([0.0, 10.0, 20.0, 30.0, 40.0, 50.0, np.inf])


def usage_level_labels(edges: np.ndarray = DEFAULT_USAGE_LEVELS) -> list[str]:
    """One label like ``'[0,0.2)'`` per level (``len(edges) - 1`` total)."""
    edges = np.asarray(edges, dtype=np.float64)
    labels = []
    for i in range(len(edges) - 1):
        hi = edges[i + 1]
        if np.isinf(hi):
            labels.append(f"[{edges[i]:g},inf)")
        else:
            labels.append(f"[{edges[i]:g},{hi:g})")
    return labels


def discretize(values: np.ndarray, edges: np.ndarray = DEFAULT_USAGE_LEVELS) -> np.ndarray:
    """Map values to level indices given ascending interval edges.

    Level ``i`` covers ``[edges[i], edges[i+1])``; values at or above
    the last edge map to the final level, values below ``edges[0]``
    raise. With the default edges, a value of exactly 1.0 falls in the
    top level ``[0.8, 1]``, matching the paper's closed last interval.
    """
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be 1-D, ascending, with >= 2 entries")
    if values.size and values.min() < edges[0]:
        raise ValueError("values below the first edge")
    if edges.size <= 8 and values.size > edges.size:
        # Few edges (the usual five usage levels): summing comparisons
        # beats a binary search per element. Produces the identical
        # level code: the count of interior edges at or below a value
        # equals searchsorted(side="right") - 1 on ascending edges.
        idx = np.zeros(values.shape, dtype=np.int64)
        for edge in edges[1:-1]:
            idx += values >= edge
        return np.minimum(idx, len(edges) - 2)
    idx = np.searchsorted(edges, values, side="right") - 1
    return np.minimum(idx, len(edges) - 2).astype(np.int64)


@dataclass(frozen=True)
class Segments:
    """Maximal constant-level runs of a discretized series.

    Attributes
    ----------
    levels:
        Level index of each run.
    durations:
        Duration of each run (same units as the input timestamps).
    start_times:
        Start timestamp of each run.
    """

    levels: np.ndarray
    durations: np.ndarray
    start_times: np.ndarray

    def __len__(self) -> int:
        return len(self.levels)

    def for_level(self, level: int) -> np.ndarray:
        """Durations of runs at one level."""
        return self.durations[self.levels == level]


def constant_segments(times: np.ndarray, levels: np.ndarray) -> Segments:
    """Extract maximal runs of equal level from a sampled series.

    ``times`` are sample timestamps (ascending); sample ``i`` is assumed
    to hold until ``times[i+1]``. The final sample's duration is taken
    as the trailing sampling interval (median spacing), mirroring a
    fixed-period monitor.
    """
    times = np.asarray(times, dtype=np.float64)
    levels = np.asarray(levels)
    if times.shape != levels.shape:
        raise ValueError("times and levels must have equal shape")
    if times.size == 0:
        empty = np.empty(0)
        return Segments(empty.astype(np.int64), empty, empty)
    if times.size > 1 and np.any(np.diff(times) <= 0):
        raise ValueError("times must be strictly increasing")

    change = np.flatnonzero(levels[1:] != levels[:-1]) + 1
    starts = np.concatenate(([0], change))
    if times.size > 1:
        tail = float(np.median(np.diff(times)))
    else:
        tail = 1.0
    boundaries = np.concatenate((times[starts], [times[-1] + tail]))
    durations = np.diff(boundaries)
    return Segments(
        levels=levels[starts].astype(np.int64),
        durations=durations,
        start_times=times[starts],
    )


def level_durations(
    times: np.ndarray,
    values: np.ndarray,
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
) -> dict[int, np.ndarray]:
    """Durations of unchanged discretized level, keyed by level index.

    This is the quantity behind Tables II/III and Fig. 9: discretize the
    sampled series with ``edges`` and collect the run durations of every
    level (levels never visited map to empty arrays).
    """
    levels = discretize(values, edges)
    segments = constant_segments(np.asarray(times, dtype=np.float64), levels)
    n_levels = len(np.asarray(edges)) - 1
    return {lvl: segments.for_level(lvl) for lvl in range(n_levels)}
