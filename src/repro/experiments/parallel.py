"""Parallel experiment execution with a shared dataset warm-up pass.

The registry's 23 experiments are independent once the two shared
datasets exist, so they fan out over a process pool. One warm-up pass
builds (or loads from the disk cache) the datasets before the pool
starts; workers then find them in the forked memo or the disk cache
instead of each re-simulating the cluster month.

Results are returned in the caller's id order regardless of which
worker finishes first, and every experiment's output depends only on
``(scale, seed)``, so a parallel run's rendered report is byte-
identical to the serial one. Failures are captured per experiment —
one broken experiment does not abort the rest.
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..core.timing import Timings
from . import datasets
from .registry import run_experiment

__all__ = ["ExperimentOutcome", "run_experiments", "warm_datasets"]


@dataclass
class ExperimentOutcome:
    """One experiment's rendered result (or failure) plus its cost."""

    experiment_id: str
    ok: bool
    rendered: str = ""
    error: str = ""
    timings: Timings = field(default_factory=Timings)


def warm_datasets(scale: str, seed: int) -> None:
    """Build or disk-load the shared datasets once, ahead of a fan-out."""
    datasets.workload_dataset(scale, seed)
    datasets.simulation_dataset(scale, seed)


def _run_one(experiment_id: str, scale: str, seed: int) -> ExperimentOutcome:
    """Run and render one experiment, capturing failures and timing."""
    outcome = ExperimentOutcome(experiment_id=experiment_id, ok=True)
    stats_before = dict(datasets.dataset_stats())
    try:
        with outcome.timings.stage(f"run:{experiment_id}"):
            result = run_experiment(experiment_id, scale=scale, seed=seed)
        with outcome.timings.stage(f"render:{experiment_id}"):
            outcome.rendered = result.render()
    except Exception as exc:
        outcome.ok = False
        outcome.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    stats_after = datasets.dataset_stats()
    outcome.timings.merge_counts(
        {
            name: stats_after.get(name, 0) - stats_before.get(name, 0)
            for name in stats_after
        }
    )
    return outcome


def _init_worker(cache_dir: str | None) -> None:
    """Configure the dataset cache inside a pool worker.

    Needed for spawn start methods; under fork the configuration (and
    the warmed dataset memo) is inherited, and reconfiguring would
    clear that memo, so only reconfigure when the target differs.
    """
    current = datasets.dataset_cache()
    current_dir = str(current.root) if current is not None else None
    if current_dir != cache_dir:
        datasets.configure_cache(Path(cache_dir) if cache_dir else None)
    datasets.reset_dataset_stats()


def _worker_task(task: tuple[str, str, int]) -> ExperimentOutcome:
    experiment_id, scale, seed = task
    return _run_one(experiment_id, scale, seed)


def run_experiments(
    ids: Sequence[str],
    *,
    scale: str = "paper",
    seed: int = 0,
    jobs: int = 1,
    timings: Timings | None = None,
) -> list[ExperimentOutcome]:
    """Run experiments serially (``jobs<=1``) or over a process pool.

    The returned list matches ``ids`` order. When ``timings`` is given,
    the warm-up stage, every experiment's stages, and the dataset
    cache counters are folded into it.
    """
    timings = timings if timings is not None else Timings()
    parent_before = dict(datasets.dataset_stats())

    def _parent_delta() -> dict[str, int]:
        after = datasets.dataset_stats()
        return {
            name: after.get(name, 0) - parent_before.get(name, 0)
            for name in after
        }

    if jobs <= 1 or len(ids) <= 1:
        outcomes = [_run_one(exp_id, scale, seed) for exp_id in ids]
        # Per-experiment counter deltas already accumulate in this
        # process's dataset stats (merged below); only stages here.
        for outcome in outcomes:
            timings.merge(outcome.timings, counters=False)
        timings.merge_counts(_parent_delta())
        return outcomes

    with timings.stage("warm-datasets"):
        warm_datasets(scale, seed)

    cache = datasets.dataset_cache()
    cache_dir = str(cache.root) if cache is not None else None
    # Prefer fork so workers inherit the warmed in-process memo; fall
    # back to the platform default where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else None
    ctx = multiprocessing.get_context(method)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(ids)),
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(cache_dir,),
    ) as pool:
        outcomes = list(
            pool.map(_worker_task, [(exp_id, scale, seed) for exp_id in ids])
        )
    # Run-level counters: the parent's warm-up traffic plus each
    # worker's own deltas (zero under fork, real under spawn).
    for outcome in outcomes:
        timings.merge(outcome.timings)
    timings.merge_counts(_parent_delta())
    return outcomes
