"""Parallel experiment execution (compatibility front-end).

The fan-out engine lives in :mod:`repro.experiments.supervisor`: every
attempt runs in its own forked worker with crash/timeout classification,
so one broken worker never takes down the run. This module keeps the
original simple entry point: :func:`run_experiments` runs serially
in-process for ``jobs <= 1`` (fast path for library use and tests) and
hands anything parallel to the supervisor with a default, no-retry
policy. Results come back in the caller's id order and every rendered
output depends only on ``(scale, seed)``, so a parallel run's report is
byte-identical to the serial one.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.timing import Timings
from . import datasets
from .supervisor import (
    ExperimentOutcome,
    SupervisorConfig,
    run_one,
    run_supervised,
    warm_datasets,
)

__all__ = ["ExperimentOutcome", "run_experiments", "warm_datasets"]


def run_experiments(
    ids: Sequence[str],
    *,
    scale: str = "paper",
    seed: int = 0,
    jobs: int = 1,
    timings: Timings | None = None,
) -> list[ExperimentOutcome]:
    """Run experiments serially (``jobs<=1``) or under the supervisor.

    The returned list matches ``ids`` order. When ``timings`` is given,
    the warm-up stage, every experiment's stages, and the dataset
    cache counters are folded into it.
    """
    timings = timings if timings is not None else Timings()

    if jobs <= 1 or len(ids) <= 1:
        parent_before = dict(datasets.dataset_stats())
        outcomes = [run_one(exp_id, scale, seed) for exp_id in ids]
        # Per-experiment counter deltas already accumulate in this
        # process's dataset stats (merged below); only stages here.
        for outcome in outcomes:
            timings.merge(outcome.timings, counters=False)
        parent_after = datasets.dataset_stats()
        timings.merge_counts(
            {
                name: parent_after.get(name, 0) - parent_before.get(name, 0)
                for name in parent_after
            }
        )
        return outcomes

    return run_supervised(
        ids,
        scale=scale,
        seed=seed,
        config=SupervisorConfig(jobs=jobs),
        timings=timings,
    )
