"""Supervised experiment execution: timeouts, retries, checkpoint-resume.

The registry's experiments are pure functions of ``(scale, seed)``, so
a harness failure — a worker OOM-killed mid-simulation, a hang, a
corrupted cache entry — never changes *what* the run would produce,
only *whether* it finishes. This module makes the harness survive those
failures instead of amplifying them:

* Every attempt runs in its own forked worker process with a one-shot
  result pipe. A crash or hang therefore has a blast radius of exactly
  one attempt: there is no shared pool to break, nothing to rebuild,
  and "requeue only unfinished work" is the only possible behaviour.
* Failures are classified — ``crash`` (worker died), ``timeout``
  (exceeded the per-experiment wall-clock budget and was killed),
  ``cache-corruption`` (a typed corruption error surfaced), or
  ``exception`` (the experiment itself raised). The first three are
  transient and retried with capped exponential backoff; exceptions are
  deterministic under the purity contract, so retrying them would waste
  exactly one identical failure per retry and they fail fast instead.
* Backoff jitter is *seeded*, not sampled from the wall clock: the
  delay is a pure function of ``(seed, experiment_id, attempt)``
  (REP501-clean), so a faulted run's retry schedule is reproducible.
* Completed outcomes are appended to a fsync'd JSONL journal under the
  cache directory. ``repro-run --resume <run-id>`` replays finished
  experiments from the journal and executes only the rest; because the
  journal stores the rendered text verbatim, a resumed run's stdout is
  byte-identical to an uninterrupted one.
* An overall run deadline (and ``--fail-fast``) cancels gracefully:
  live workers are terminated, unstarted work is marked ``cancelled``,
  and everything already finished is kept (and journaled).

Scheduling order never affects output: results are returned in the
caller's id order, and each rendered result depends only on
``(scale, seed)``. Faults, retries and resume change timing and
counters — observability channels — never stdout.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

from .. import __version__
from ..core.diskcache import CacheCorruptionError
from ..core.retry import backoff_delay
from ..core.timing import Timings
from . import datasets
from .faults import FaultPlan
from .registry import run_experiment

__all__ = [
    "ExperimentOutcome",
    "SupervisorConfig",
    "TRANSIENT_KINDS",
    "backoff_delay",
    "journal_path",
    "load_journal",
    "run_id",
    "run_one",
    "run_supervised",
    "warm_datasets",
]

#: Failure classes the supervisor retries (capped by ``retries``).
#: ``exception`` is deterministic under the purity contract and is not.
TRANSIENT_KINDS = frozenset({"crash", "timeout", "cache-corruption"})


def _now() -> float:
    """Scheduling clock for timeouts/deadlines (observability only).

    Never feeds rendered results — REP501's determinism contract is
    about outputs, and the supervisor only uses the clock to decide
    *when* to run work whose *content* is fixed by ``(scale, seed)``.
    """
    return time.monotonic()  # reprolint: disable=REP501


@dataclass
class ExperimentOutcome:
    """One experiment's rendered result (or failure) plus its cost."""

    experiment_id: str
    ok: bool
    rendered: str = ""
    error: str = ""
    #: "" on success; one of crash | timeout | exception |
    #: cache-corruption | cancelled on failure.
    error_kind: str = ""
    #: 1-based number of the attempt that produced this outcome.
    attempts: int = 1
    #: True when served from a resume journal instead of executed.
    resumed: bool = False
    timings: Timings = field(default_factory=Timings)

    def as_journal_dict(self) -> dict[str, object]:
        return {
            "id": self.experiment_id,
            "ok": self.ok,
            "rendered": self.rendered,
            "error": self.error,
            "error_kind": self.error_kind,
            "attempts": self.attempts,
        }

    @classmethod
    def from_journal_dict(cls, entry: Mapping[str, object]) -> "ExperimentOutcome":
        return cls(
            experiment_id=str(entry["id"]),
            ok=bool(entry["ok"]),
            rendered=str(entry.get("rendered", "")),
            error=str(entry.get("error", "")),
            error_kind=str(entry.get("error_kind", "")),
            attempts=int(entry.get("attempts", 1)),  # type: ignore[arg-type]
            resumed=True,
        )


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerance policy for one supervised run."""

    jobs: int = 1
    #: Per-experiment wall-clock budget; a worker past it is killed and
    #: the attempt classified ``timeout``. ``None`` disables.
    timeout: float | None = None
    #: Extra attempts allowed per experiment for transient failures.
    retries: int = 0
    #: Overall run budget; when exceeded, live workers are terminated
    #: and remaining work is marked ``cancelled``. ``None`` disables.
    deadline: float | None = None
    #: First-retry backoff, doubling per attempt up to ``backoff_cap``.
    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    #: Cancel the rest of the run on the first permanent failure.
    fail_fast: bool = False
    #: Supervision loop granularity (result/deadline polling).
    poll_interval: float = 0.05


def classify_exception(exc: BaseException) -> str:
    """Map an in-worker exception to a failure class."""
    if isinstance(exc, CacheCorruptionError):
        return "cache-corruption"
    return "exception"


def warm_datasets(scale: str, seed: int) -> None:
    """Build or disk-load the shared datasets once, ahead of a fan-out."""
    datasets.workload_dataset(scale, seed)
    datasets.simulation_dataset(scale, seed)


def run_one(
    experiment_id: str,
    scale: str,
    seed: int,
    *,
    attempt: int = 1,
    plan: FaultPlan | None = None,
) -> ExperimentOutcome:
    """Run and render one experiment, capturing failures and timing.

    The fault plan (if any) triggers before the experiment so injected
    misbehaviour lands on a precise ``(experiment, attempt)``.
    """
    outcome = ExperimentOutcome(
        experiment_id=experiment_id, ok=True, attempts=attempt
    )
    stats_before = dict(datasets.dataset_stats())
    try:
        if plan is not None:
            plan.trigger(experiment_id, attempt, timings=outcome.timings)
        with outcome.timings.stage(f"run:{experiment_id}"):
            result = run_experiment(experiment_id, scale=scale, seed=seed)
        with outcome.timings.stage(f"render:{experiment_id}"):
            outcome.rendered = result.render()
    except Exception as exc:
        outcome.ok = False
        outcome.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        outcome.error_kind = classify_exception(exc)
    stats_after = datasets.dataset_stats()
    outcome.timings.merge_counts(
        {
            name: stats_after.get(name, 0) - stats_before.get(name, 0)
            for name in stats_after
        }
    )
    return outcome


# -- run identity and journal -------------------------------------------------


def run_id(ids: Sequence[str], scale: str, seed: int) -> str:
    """Deterministic id of one run configuration.

    A pure function of the experiment list, scale, seed and code
    version, so an interrupted invocation and its resume agree on the
    journal location without any session state.
    """
    payload = json.dumps(
        {
            "ids": list(ids),
            "scale": scale,
            "seed": seed,
            "version": __version__,
            "cache": datasets.DATASET_CACHE_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def journal_path(cache_dir: str | Path, run: str) -> Path:
    """Where the run's checkpoint journal lives under the cache dir."""
    return Path(cache_dir) / "runs" / run / "journal.jsonl"


def write_journal_header(
    path: Path, ids: Sequence[str], scale: str, seed: int
) -> None:
    """Start a fresh journal (truncating any previous run's)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "run": run_id(ids, scale, seed),
        "ids": list(ids),
        "scale": scale,
        "seed": seed,
        "version": __version__,
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def append_journal(path: Path, outcome: ExperimentOutcome) -> None:
    """Checkpoint one finished outcome (flushed and fsync'd).

    A SIGKILL mid-append leaves at most one truncated trailing line,
    which :func:`load_journal` tolerates; everything before it is
    durable, so a resume re-executes at most the in-flight experiments.
    """
    line = json.dumps(outcome.as_journal_dict(), sort_keys=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_journal(
    path: Path,
) -> tuple[dict[str, object], dict[str, ExperimentOutcome]]:
    """Read a journal: (header, completed outcomes by experiment id).

    Truncated or garbled trailing lines — the expected residue of a
    kill mid-write — are skipped rather than fatal.
    """
    header: dict[str, object] = {}
    completed: dict[str, ExperimentOutcome] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for index, line in enumerate(fh):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict):
                continue
            if index == 0 and "run" in entry:
                header = entry
                continue
            if "id" not in entry:
                continue
            outcome = ExperimentOutcome.from_journal_dict(entry)
            completed[outcome.experiment_id] = outcome
    return header, completed


# -- the supervised executor --------------------------------------------------


def _child_main(
    conn,
    experiment_id: str,
    scale: str,
    seed: int,
    attempt: int,
    plan: FaultPlan | None,
    cache_dir: str | None,
) -> None:
    """Worker entry point: run one attempt, ship the outcome, exit.

    Under fork the dataset memo and cache configuration are inherited;
    under spawn the cache is reconfigured from ``cache_dir`` (matching
    targets keep an inherited memo intact).
    """
    try:
        current = datasets.dataset_cache()
        current_dir = str(current.root) if current is not None else None
        if current_dir != cache_dir:
            datasets.configure_cache(Path(cache_dir) if cache_dir else None)
        outcome = run_one(
            experiment_id, scale, seed, attempt=attempt, plan=plan
        )
        conn.send(outcome)
    finally:
        conn.close()


@dataclass
class _Running:
    """Book-keeping for one live worker attempt."""

    experiment_id: str
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: object  # parent end of the result pipe
    kill_at: float | None  # monotonic deadline, None = no timeout


@dataclass
class _Pending:
    """An attempt waiting for a worker slot (possibly in backoff)."""

    experiment_id: str
    attempt: int = 1
    eligible_at: float = 0.0  # monotonic time before which it must wait


def _terminate(worker: _Running) -> None:
    """Stop a live worker, escalating SIGTERM -> SIGKILL."""
    process = worker.process
    if process.is_alive():
        process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
    try:
        worker.conn.close()  # type: ignore[attr-defined]
    except OSError:
        pass


def run_supervised(
    ids: Sequence[str],
    *,
    scale: str = "paper",
    seed: int = 0,
    config: SupervisorConfig | None = None,
    timings: Timings | None = None,
    plan: FaultPlan | None = None,
    journal: Path | None = None,
    completed: Mapping[str, ExperimentOutcome] | None = None,
) -> list[ExperimentOutcome]:
    """Run experiments under supervision; returns outcomes in id order.

    ``completed`` holds journal-loaded outcomes from an interrupted
    run: successful ones are served as-is (marked ``resumed``), failed
    ones are re-executed. When ``journal`` is given, every finished
    outcome is checkpointed there as it completes.
    """
    config = config if config is not None else SupervisorConfig()
    timings = timings if timings is not None else Timings()
    parent_before = dict(datasets.dataset_stats())

    results: dict[str, ExperimentOutcome] = {}
    pending: list[_Pending] = []
    for experiment_id in ids:
        previous = (completed or {}).get(experiment_id)
        if previous is not None and previous.ok:
            results[experiment_id] = previous
            timings.count("resumed")
        else:
            pending.append(_Pending(experiment_id))

    if pending:
        with timings.stage("warm-datasets"):
            warm_datasets(scale, seed)

    cache = datasets.dataset_cache()
    cache_dir = str(cache.root) if cache is not None else None
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )

    run_deadline = (
        _now() + config.deadline if config.deadline is not None else None
    )
    running: list[_Running] = []
    cancel_reason: str | None = None

    def finalize(outcome: ExperimentOutcome) -> None:
        results[outcome.experiment_id] = outcome
        timings.merge(outcome.timings)
        if journal is not None and outcome.error_kind != "cancelled":
            append_journal(journal, outcome)

    def schedule_retry(item: _Pending, outcome: ExperimentOutcome) -> bool:
        """Requeue a transient failure; False when retries are spent."""
        if (
            outcome.error_kind not in TRANSIENT_KINDS
            or item.attempt > config.retries
        ):
            return False
        delay = backoff_delay(
            seed,
            item.experiment_id,
            item.attempt,
            base=config.backoff_base,
            cap=config.backoff_cap,
        )
        pending.append(
            _Pending(
                experiment_id=item.experiment_id,
                attempt=item.attempt + 1,
                eligible_at=_now() + delay,
            )
        )
        timings.count("retries")
        timings.count("requeued")
        return True

    def cancel_remaining(reason: str) -> None:
        for worker in running:
            _terminate(worker)
            finalize(
                ExperimentOutcome(
                    experiment_id=worker.experiment_id,
                    ok=False,
                    error=f"cancelled: {reason}",
                    error_kind="cancelled",
                    attempts=worker.attempt,
                )
            )
            timings.count("cancelled")
        running.clear()
        for item in pending:
            finalize(
                ExperimentOutcome(
                    experiment_id=item.experiment_id,
                    ok=False,
                    error=f"cancelled: {reason}",
                    error_kind="cancelled",
                    attempts=max(1, item.attempt - 1),
                )
            )
            timings.count("cancelled")
        pending.clear()

    while pending or running:
        now = _now()
        if run_deadline is not None and now >= run_deadline:
            cancel_remaining("run deadline exceeded")
            break
        if cancel_reason is not None:
            cancel_remaining(cancel_reason)
            break

        # Launch eligible work into free slots.
        launchable = [
            item for item in pending if item.eligible_at <= now
        ]
        while launchable and len(running) < max(1, config.jobs):
            item = launchable.pop(0)
            pending.remove(item)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_child_main,
                args=(
                    child_conn,
                    item.experiment_id,
                    scale,
                    seed,
                    item.attempt,
                    plan,
                    cache_dir,
                ),
            )
            process.start()
            child_conn.close()
            kill_at = (
                now + config.timeout if config.timeout is not None else None
            )
            if run_deadline is not None:
                kill_at = (
                    run_deadline if kill_at is None else min(kill_at, run_deadline)
                )
            running.append(
                _Running(
                    experiment_id=item.experiment_id,
                    attempt=item.attempt,
                    process=process,
                    conn=parent_conn,
                    kill_at=kill_at,
                )
            )

        if not running:
            # Everything pending is in backoff; sleep until the nearest
            # retry becomes eligible (bounded by the poll interval floor
            # and the run deadline).
            if pending:
                wake = min(item.eligible_at for item in pending)
                sleep_s = max(config.poll_interval, wake - _now())
                if run_deadline is not None:
                    sleep_s = min(sleep_s, max(0.0, run_deadline - _now()))
                time.sleep(sleep_s)
            continue

        # Wait until a worker reports, dies, or a deadline needs checking.
        waitables = [worker.conn for worker in running] + [
            worker.process.sentinel for worker in running
        ]
        timeout = config.poll_interval
        kill_ats = [w.kill_at for w in running if w.kill_at is not None]
        if kill_ats:
            timeout = max(0.0, min(min(kill_ats) - _now(), timeout))
        _connection_wait(waitables, timeout=timeout)

        still_running: list[_Running] = []
        for worker in running:
            item = _Pending(worker.experiment_id, worker.attempt)
            outcome: ExperimentOutcome | None = None
            if worker.conn.poll():  # type: ignore[attr-defined]
                try:
                    outcome = worker.conn.recv()  # type: ignore[attr-defined]
                except (EOFError, OSError):
                    outcome = None  # died mid-send: treat as a crash
            if outcome is not None:
                worker.process.join()
                worker.conn.close()  # type: ignore[attr-defined]
                if outcome.ok or not schedule_retry(item, outcome):
                    finalize(outcome)
                    if not outcome.ok and config.fail_fast:
                        cancel_reason = (
                            f"fail-fast after {outcome.experiment_id} "
                            f"failed ({outcome.error_kind})"
                        )
                continue
            if not worker.process.is_alive():
                worker.process.join()
                worker.conn.close()  # type: ignore[attr-defined]
                code = worker.process.exitcode
                timings.count("worker_crashes")
                crashed = ExperimentOutcome(
                    experiment_id=worker.experiment_id,
                    ok=False,
                    error=(
                        f"worker for {worker.experiment_id} died with exit "
                        f"code {code} (attempt {worker.attempt})"
                    ),
                    error_kind="crash",
                    attempts=worker.attempt,
                )
                if not schedule_retry(item, crashed):
                    finalize(crashed)
                    if config.fail_fast:
                        cancel_reason = (
                            f"fail-fast after {worker.experiment_id} "
                            "failed (crash)"
                        )
                continue
            if worker.kill_at is not None and _now() >= worker.kill_at:
                _terminate(worker)
                timings.count("experiment_timeouts")
                timed_out = ExperimentOutcome(
                    experiment_id=worker.experiment_id,
                    ok=False,
                    error=(
                        f"experiment {worker.experiment_id} exceeded its "
                        f"{config.timeout:.1f}s timeout "
                        f"(attempt {worker.attempt}); worker killed"
                    )
                    if config.timeout is not None
                    else (
                        f"experiment {worker.experiment_id} killed at the "
                        f"run deadline (attempt {worker.attempt})"
                    ),
                    error_kind="timeout",
                    attempts=worker.attempt,
                )
                if not schedule_retry(item, timed_out):
                    finalize(timed_out)
                    if config.fail_fast:
                        cancel_reason = (
                            f"fail-fast after {worker.experiment_id} "
                            "failed (timeout)"
                        )
                continue
            still_running.append(worker)
        running = still_running

    # Run-level counters: the parent's warm-up traffic plus each
    # worker's own deltas (carried in the outcomes' timings).
    parent_after = datasets.dataset_stats()
    timings.merge_counts(
        {
            name: parent_after.get(name, 0) - parent_before.get(name, 0)
            for name in parent_after
        }
    )
    return [results[experiment_id] for experiment_id in ids]
