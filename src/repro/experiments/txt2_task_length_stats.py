"""Sec. VI in-text task-length statistics.

Paper: ~55% of Google tasks finish within 10 minutes, ~90% within one
hour, ~94% within 3 hours; mean 5.6 h, max 29 days. AuverGrid: mean
7.2 h, max 18 days, ~70% under 12 hours — Cloud tasks are mostly
shorter, yet the longest Cloud tasks are longer than the longest Grid
tasks.
"""

from __future__ import annotations

import numpy as np

from ..core.summary import fraction_below
from ..synth.presets import DAY, HOUR
from .base import ExperimentResult, ResultTable
from .datasets import workload_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    google = np.asarray(data.google_tasks.duration)
    ag = np.asarray(data.grid_jobs_native["AuverGrid"]["run_time"])

    rows = [
        (
            "Google",
            round(float(google.mean()) / HOUR, 2),
            round(float(google.max()) / DAY, 1),
            round(fraction_below(google, 600), 3),
            round(fraction_below(google, HOUR), 3),
            round(fraction_below(google, 3 * HOUR), 3),
            round(fraction_below(google, 12 * HOUR), 3),
        ),
        (
            "AuverGrid",
            round(float(ag.mean()) / HOUR, 2),
            round(float(ag.max()) / DAY, 1),
            round(fraction_below(ag, 600), 3),
            round(fraction_below(ag, HOUR), 3),
            round(fraction_below(ag, 3 * HOUR), 3),
            round(fraction_below(ag, 12 * HOUR), 3),
        ),
    ]
    return ExperimentResult(
        experiment_id="txt2",
        title="Task-length statistics, Google vs AuverGrid",
        tables=(
            ResultTable.build(
                "task execution time statistics",
                ("system", "mean_h", "max_d", "<10min", "<1h", "<3h", "<12h"),
                rows,
            ),
        ),
        metrics={
            "google_frac_under_10min": round(fraction_below(google, 600), 3),
            "google_frac_under_1h": round(fraction_below(google, HOUR), 3),
            "google_frac_under_3h": round(fraction_below(google, 3 * HOUR), 3),
            "google_mean_hours": round(float(google.mean()) / HOUR, 2),
            "google_max_days": round(float(google.max()) / DAY, 1),
            "auvergrid_mean_hours": round(float(ag.mean()) / HOUR, 2),
            "auvergrid_max_days": round(float(ag.max()) / DAY, 1),
            "cloud_tasks_mostly_shorter": fraction_below(google, HOUR)
            > fraction_below(ag, HOUR),
            "cloud_max_longer": float(google.max()) > float(ag.max()),
        },
        paper_reference={
            "google": "55% <10 min, 90% <1 h, 94% <3 h; mean 5.6 h, max 29 d",
            "auvergrid": "70% <12 h; mean 7.2 h, max 18 d",
        },
        notes=(
            "Cloud tasks are mostly shorter while the extreme Cloud tasks "
            "(long-running services) exceed the longest Grid tasks."
        ),
    )
