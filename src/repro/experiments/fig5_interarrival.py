"""Fig. 5 — CDF of the interval between consecutive job submissions.

Google submission intervals are far shorter than any Grid system's:
the Cloud receives a near-continuous job stream while Grids idle
between diurnal bursts.
"""

from __future__ import annotations

import numpy as np

from ..core.ecdf import ecdf
from ..traces.convert import job_interarrival_times
from .base import ExperimentResult, ResultTable
from .datasets import grid_system_names, workload_dataset

__all__ = ["run", "CDF_POINTS"]

#: Interarrival evaluation grid (seconds), the figure's x-axis.
CDF_POINTS = (5, 10, 30, 60, 120, 300, 600, 1000, 2000)


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    systems = {"Google": data.google_jobs}
    systems.update({n: data.grid_jobs[n] for n in grid_system_names()})

    rows = []
    medians: dict[str, float] = {}
    means: dict[str, float] = {}
    for name, jobs in systems.items():
        gaps = job_interarrival_times(jobs)
        cdf = ecdf(gaps)
        medians[name] = float(np.median(gaps))
        means[name] = float(gaps.mean())
        rows.append((name, *(round(float(cdf(x)), 3) for x in CDF_POINTS)))

    grid_means = [v for k, v in means.items() if k != "Google"]
    return ExperimentResult(
        experiment_id="fig5",
        title="CDF of job submission intervals",
        tables=(
            ResultTable.build(
                "Fig. 5: P(interval <= x seconds)",
                ("system", *(f"<={x}s" for x in CDF_POINTS)),
                rows,
            ),
        ),
        metrics={
            "google_median_interval_s": round(medians["Google"], 2),
            "google_mean_interval_s": round(means["Google"], 2),
            "min_grid_mean_interval_s": round(min(grid_means), 1),
            "google_shortest_intervals": means["Google"] < min(grid_means),
        },
        paper_reference={
            "finding": (
                "Google's submission-interval CDF lies far left of every "
                "Grid system's (much higher submission frequency)"
            ),
        },
        notes=(
            "At 552 jobs/hour the median Google gap is a few seconds; Grid "
            "systems wait minutes to hours between submissions."
        ),
    )
