"""Fig. 5 — CDF of the interval between consecutive job submissions.

Google submission intervals are far shorter than any Grid system's:
the Cloud receives a near-continuous job stream while Grids idle
between diurnal bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ecdf import ecdf
from ..traces.convert import job_interarrival_times
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    grid_system_names,
    sharded_google_jobs,
    sharded_map_reduce,
    workload_dataset,
)

__all__ = ["run", "CDF_POINTS"]

#: Interarrival evaluation grid (seconds), the figure's x-axis.
CDF_POINTS = (5, 10, 30, 60, 120, 300, 600, 1000, 2000)


@dataclass
class _GapState:
    """Mergeable interarrival gaps over time-sorted submit shards.

    Each shard contributes its internal ``np.diff`` plus its first/last
    submit times; merging adjacent states inserts the one boundary gap
    ``other.first - self.last``. Because the sharded jobs table is
    sorted by submit time before spilling, concatenating the chunks in
    shard order is elementwise identical to ``np.diff`` over the full
    sorted column — so the ECDF, median, and mean match the memory
    backend bit for bit.
    """

    first: float
    last: float
    count: int
    chunks: list = field(default_factory=list)

    def merge(self, other: "_GapState") -> "_GapState":
        if other.first < self.last:
            raise ValueError("gap states must merge in time order")
        self.chunks.append(np.array([other.first - self.last]))
        self.chunks.extend(other.chunks)
        self.last = other.last
        self.count += other.count
        return self

    def gaps(self) -> np.ndarray:
        if self.count < 2:
            return np.empty(0)
        return np.concatenate(self.chunks) if self.chunks else np.empty(0)


def _shard_gaps(shard) -> _GapState:
    """Map kernel: interarrival gaps within one time-sorted shard."""
    submit = np.sort(np.asarray(shard["submit_time"], dtype=np.float64))
    return _GapState(
        first=float(submit[0]),
        last=float(submit[-1]),
        count=int(submit.size),
        chunks=[np.diff(submit)] if submit.size > 1 else [],
    )


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    systems = {"Google": data.google_jobs}
    systems.update({n: data.grid_jobs[n] for n in grid_system_names()})

    backend = active_backend()
    google_gaps: np.ndarray | None = None
    if backend.name == "sharded":
        state = sharded_map_reduce(
            sharded_google_jobs(scale, seed, backend.shard_rows), _shard_gaps
        )
        google_gaps = state.gaps() if state is not None else np.empty(0)

    rows = []
    medians: dict[str, float] = {}
    means: dict[str, float] = {}
    for name, jobs in systems.items():
        if name == "Google" and google_gaps is not None:
            gaps = google_gaps
        else:
            gaps = job_interarrival_times(jobs)
        cdf = ecdf(gaps)
        medians[name] = float(np.median(gaps))
        means[name] = float(gaps.mean())
        rows.append((name, *(round(float(cdf(x)), 3) for x in CDF_POINTS)))

    grid_means = [v for k, v in means.items() if k != "Google"]
    return ExperimentResult(
        experiment_id="fig5",
        title="CDF of job submission intervals",
        tables=(
            ResultTable.build(
                "Fig. 5: P(interval <= x seconds)",
                ("system", *(f"<={x}s" for x in CDF_POINTS)),
                rows,
            ),
        ),
        metrics={
            "google_median_interval_s": round(medians["Google"], 2),
            "google_mean_interval_s": round(means["Google"], 2),
            "min_grid_mean_interval_s": round(min(grid_means), 1),
            "google_shortest_intervals": means["Google"] < min(grid_means),
        },
        paper_reference={
            "finding": (
                "Google's submission-interval CDF lies far left of every "
                "Grid system's (much higher submission frequency)"
            ),
        },
        notes=(
            "At 552 jobs/hour the median Google gap is a few seconds; Grid "
            "systems wait minutes to hours between submissions."
        ),
    )
