"""``repro-bench``: tracked kernel + experiment benchmark harness.

Times the vectorized analysis/simulation kernels against their scalar
golden references, the chunked paper-scale host-load pipeline, the
out-of-core sharded backend against the in-memory batch path (plus a
spawn-isolated 10x-paper streaming run whose ``peak_rss_kb`` is the
bounded-memory claim), and every registered experiment, at one or more
dataset scales. Results
land in ``benchmarks/BENCH_<n>.json`` snapshots (``n`` auto-increments)
and each run diffs itself against the previous snapshot, flagging
regressions.

Regression policy: by default only *speedup ratios* are compared —
vectorized-over-scalar wall-time ratios are nearly machine-independent,
so CI stays meaningful across hosts. An entry regresses when its
speedup drops below 80% of the baseline's **and** below the grace floor
of 5x (a 40x kernel drifting to 35x is noise; dropping under 5x means
the vectorization broke). Raw wall-time comparison against the
baseline (same-machine runs only) is opt-in via ``--check-wall``.

Entry schema (one JSON object per benchmark x scale)::

    {"name": ..., "scale": ..., "wall_s": ..., "cpu_s": ...,
     "peak_rss_kb": ..., "tasks_per_s": ..., "speedup": ...}

``peak_rss_kb`` is the process high-water mark after the entry ran
(``getrusage``; monotone across entries — the paper-pipeline bound is
its value on a fresh run). ``speedup`` is scalar wall over vectorized
wall, null for unpaired benches. ``tasks_per_s`` is rows (or tasks)
processed per vectorized wall-second.
"""

from __future__ import annotations

import argparse
import json
import re
import resource
import shutil
import sys
import tempfile
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from pathlib import Path

import numpy as np

from ..core.ecdf import ecdf
from ..core.fairness import HourlyCountsAccumulator
from ..core.kernels import (
    ECDFAccumulator,
    MassCountAccumulator,
    pooled_level_durations,
)
from ..core.mapreduce import map_reduce
from ..core.masscount import mass_count
from ..core.shard import write_table
from ..core.timing import Timings
from ..hostload.levels import (
    _pooled_level_durations_scalar,
    duration_stats_by_level,
    pooled_level_durations as pooled_series_durations,
)
from ..hostload.series import _all_machine_series_scalar, grouped_machine_series
from ..hostload.stream import UsageGridAccumulator
from ..sim.cluster import ClusterSimulator, SimConfig
from ..sim.monitor import MACHINE_USAGE_SCHEMA
from ..synth.google_model import (
    GoogleConfig,
    generate_task_requests,
    iter_task_requests,
)
from ..synth.machines import generate_machines
from ..synth.presets import DAY, HOUR
from ..synth.sharded import shard_task_requests
from ..traces.schema import priority_band_array
from ..core.table import Table
from .datasets import SCALES
from .fig7_max_load import ATTRIBUTES as _MAXLOAD_ATTRIBUTES
from .fig7_max_load import _machine_maxima, _merge_maxima
from .registry import EXPERIMENTS

__all__ = ["main", "run_benchmarks"]

SNAPSHOT_PATTERN = re.compile(r"BENCH_(\d+)\.json$")

#: Regression thresholds (see module docstring).
SPEEDUP_RETENTION = 0.8
SPEEDUP_GRACE_FLOOR = 5.0
#: Baselines below this claim no real speedup (the batched event drain
#: hovers near 1x) — there the ratio is all measurement noise, so the
#: retention check does not apply.
SPEEDUP_CHECK_MIN = 1.5
WALL_TOLERANCE = 1.2

#: Synthetic usage-grid sizes per scale: (machines, ticks-per-machine).
#: Ticks are 5-minute samples; machine count dominates the scalar
#: path's cost (one full-table scan per machine), tick count the
#: vectorized path's.
_KERNEL_GRIDS = {
    # "small" is sized so the vectorized kernels take >= a few ms — any
    # smaller and the CI-gated speedup ratios are scheduler noise.
    "small": (64, 576),
    "medium": (2_000, 288),
    "paper": (12_500, 720),
}

#: Streaming host-load pipeline sizes: (machines, horizon_s, tasks/hour).
#: Paper scale is the full trace: 25M tasks on 12,500 machines over a
#: month (25e6 tasks / 720 h).
_PIPELINES = {
    "small": (16, 2 * DAY, 1_000.0),
    "medium": (1_000, 6 * DAY, 12_000.0),
    "paper": (12_500, 30 * DAY, 25_000_000.0 / (30 * DAY / HOUR)),
}

#: Event-drain sim sizes: (machines, horizon_s, tasks/hour). Kept
#: moderate so the scalar (unbatched) pair stays affordable everywhere.
_DRAIN_SIMS = {
    "small": (16, 2 * DAY, 220.0),
    "medium": (32, 4 * DAY, 390.0),
    "paper": (40, 6 * DAY, 480.0),
}

#: Scalar golden references skipped where the O(machines x rows) scan
#: would dominate the whole run; their entries carry speedup null.
_SCALAR_SKIP_SCALES = {"paper"}

#: Sharded-reduction input sizes: synthetic duration rows per scale.
#: Paper matches the trace's 25M tasks.
_SHARDED_ROWS = {"small": 200_000, "medium": 2_000_000, "paper": 25_000_000}

#: Production spill size (the runner's ``--shard-rows`` default).
_SHARD_ROWS_DEFAULT = 1_000_000

#: 10x-paper streaming run: (horizon_s, tasks/hour) — 250M tasks over
#: the paper's month, spilled as 5M-row shards of two columns.
_TENX_STREAM = (30 * DAY, 10 * 25_000_000.0 / (30 * DAY / HOUR))
_TENX_SHARD_ROWS = 5_000_000
_TENX_COLUMNS = ("submit_time", "duration")


def _bench_shard_rows(rows: int) -> int:
    """Spill size: production shards, but at least a four-shard fold so
    the small CI scale still exercises multi-shard merging."""
    return min(_SHARD_ROWS_DEFAULT, max(1, -(-rows // 4)))


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _timed(
    fn: Callable[[], object],
    *,
    min_wall_s: float = 0.05,
    max_repeats: int = 20,
) -> tuple[object, float, float]:
    """(result, wall seconds, cpu seconds) — best of up to ``max_repeats``.

    Sub-``min_wall_s`` calls are re-run and the fastest wall time kept,
    so the speedup ratios snapshotted for CI gating are not dominated by
    scheduler noise; anything slower is measured once.
    """
    timings = Timings()
    best_wall = best_cpu = None
    result = None
    for i in range(max_repeats):
        name = f"call{i}"
        with timings.stage(name):
            result = fn()
        stats = timings.stages[name]
        if best_wall is None or stats.wall_s < best_wall:
            best_wall, best_cpu = stats.wall_s, stats.cpu_s
        if stats.wall_s >= min_wall_s:
            break
    return result, best_wall, best_cpu


def _entry(
    name: str,
    scale: str,
    wall_s: float,
    cpu_s: float,
    *,
    tasks: int | None = None,
    scalar_wall_s: float | None = None,
) -> dict[str, object]:
    return {
        "name": name,
        "scale": scale,
        "wall_s": round(wall_s, 6),
        "cpu_s": round(cpu_s, 6),
        "peak_rss_kb": _peak_rss_kb(),
        "tasks_per_s": (
            None if tasks is None or wall_s <= 0 else round(tasks / wall_s, 1)
        ),
        "speedup": (
            None
            if scalar_wall_s is None or wall_s <= 0
            else round(scalar_wall_s / wall_s, 2)
        ),
    }


# -- synthetic inputs ----------------------------------------------------------


def _sticky_series(
    rng: np.random.Generator,
    n_machines: int,
    n_ticks: int,
    high: float,
    change_prob: float = 0.3,
) -> np.ndarray:
    """Tick-major usage rows whose levels persist across samples.

    Real host load is sticky — Tables II/III measure how *long* levels
    stay unchanged — so the benchmark input holds each drawn value for
    a geometric number of ticks instead of redrawing every sample
    (which would be the run-length kernels' unrepresentative worst
    case).
    """
    candidates = rng.uniform(0.0, high, (n_machines, n_ticks))
    change = rng.uniform(size=(n_machines, n_ticks)) < change_prob
    change[:, 0] = True
    held_idx = np.maximum.accumulate(
        np.where(change, np.arange(n_ticks)[None, :], 0), axis=1
    )
    held = np.take_along_axis(candidates, held_idx, axis=1)
    return held.T.reshape(-1)


def _synthetic_usage(
    scale: str, seed: int
) -> tuple[Table, Table]:
    """Monitor-shaped usage table + machines table for kernel benches."""
    n_machines, n_ticks = _KERNEL_GRIDS[scale]
    rng = np.random.default_rng(seed)
    machines = generate_machines(n_machines, rng)
    ids = np.asarray(machines["machine_id"], dtype=np.int64)
    times = np.repeat(np.arange(n_ticks) * 300.0, n_machines)
    rows = n_machines * n_ticks
    columns: dict[str, np.ndarray] = {
        "time": times,
        "machine_id": np.tile(ids, n_ticks),
    }
    for name in MACHINE_USAGE_SCHEMA:
        if name in columns:
            continue
        if name == "n_running":
            columns[name] = rng.integers(0, 40, rows)
        else:
            columns[name] = _sticky_series(rng, n_machines, n_ticks, 0.5)
    return Table(columns, schema=MACHINE_USAGE_SCHEMA), machines


# -- individual benches --------------------------------------------------------


def _bench_series_extraction(
    scale: str, seed: int
) -> tuple[dict[str, object], dict]:
    usage, machines = _synthetic_usage(scale, seed)
    series, wall, cpu = _timed(lambda: grouped_machine_series(usage, machines))
    scalar_wall = None
    if scale not in _SCALAR_SKIP_SCALES:
        _, scalar_wall, _ = _timed(
            lambda: _all_machine_series_scalar(usage, machines)
        )
    entry = _entry(
        "series_extraction",
        scale,
        wall,
        cpu,
        tasks=len(usage),
        scalar_wall_s=scalar_wall,
    )
    return entry, {"series": series}


def _bench_run_length(scale: str, seed: int, series: dict) -> dict[str, object]:
    pooled, wall, cpu = _timed(lambda: pooled_series_durations(series, "cpu"))
    scalar_wall = None
    if scale not in _SCALAR_SKIP_SCALES:
        _, scalar_wall, _ = _timed(
            lambda: _pooled_level_durations_scalar(series, "cpu")
        )
    rows = sum(len(s) for s in series.values())
    del pooled
    return _entry(
        "run_length_segmentation",
        scale,
        wall,
        cpu,
        tasks=rows,
        scalar_wall_s=scalar_wall,
    )


def _bench_mass_count(scale: str, seed: int, series: dict) -> dict[str, object]:
    def run():
        acc = MassCountAccumulator(positive_only=True)
        for s in series.values():
            acc.add(s.relative("cpu"))
        return acc.finalize()

    _, wall, cpu = _timed(run)
    rows = sum(len(s) for s in series.values())
    return _entry("mass_count_accumulation", scale, wall, cpu, tasks=rows)


def _bench_event_drain(scale: str, seed: int) -> dict[str, object]:
    n_machines, horizon, tasks_per_hour = _DRAIN_SIMS[scale]
    rng = np.random.default_rng(seed)
    machines = generate_machines(n_machines, rng)
    requests = generate_task_requests(
        horizon,
        seed=seed + 1,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=tasks_per_hour,
    )

    def run(batched: bool):
        # Pinned to the scalar engine: this entry tracks the batched
        # pop_batch drain against the one-event-at-a-time scalar loop,
        # not the SoA engine (that comparison is ``sim_drain``).
        sim = ClusterSimulator(machines, SimConfig(), seed=seed + 2)
        return sim.run(
            requests, horizon, batched_drain=batched, engine="scalar"
        )

    _, wall, cpu = _timed(lambda: run(True))
    _, scalar_wall, _ = _timed(lambda: run(False))
    return _entry(
        "event_drain",
        scale,
        wall,
        cpu,
        tasks=len(requests),
        scalar_wall_s=scalar_wall,
    )


def _bench_sim_drain(scale: str, seed: int) -> dict[str, object]:
    """SoA engine (compiled hot loop when available) vs scalar golden.

    Same workloads as ``event_drain``; the speedup column is the whole
    point — the 0.8x retention gate on it keeps the fast engine fast.
    """
    n_machines, horizon, tasks_per_hour = _DRAIN_SIMS[scale]
    rng = np.random.default_rng(seed)
    machines = generate_machines(n_machines, rng)
    requests = generate_task_requests(
        horizon,
        seed=seed + 1,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=tasks_per_hour,
    )

    def run(engine: str):
        sim = ClusterSimulator(machines, SimConfig(), seed=seed + 2)
        return sim.run(requests, horizon, engine=engine)

    result, wall, cpu = _timed(lambda: run("soa"))
    scalar_wall = None
    if scale not in _SCALAR_SKIP_SCALES:
        scalar_result, scalar_wall, _ = _timed(lambda: run("scalar"))
        if scalar_result.task_events != result.task_events:
            raise AssertionError(
                "sim_drain: SoA engine diverged from scalar golden run"
            )
    return _entry(
        "sim_drain",
        scale,
        wall,
        cpu,
        tasks=int(result.counts["scheduled"]),
        scalar_wall_s=scalar_wall,
    )


def _bench_chunked_generation(scale: str, seed: int) -> dict[str, object]:
    _n_machines, horizon, tasks_per_hour = _PIPELINES[scale]

    def run():
        total = 0
        for chunk in iter_task_requests(
            horizon,
            seed=seed,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=tasks_per_hour,
        ):
            total += len(chunk)
        return total

    total, wall, cpu = _timed(run)
    return _entry("chunked_generation", scale, wall, cpu, tasks=int(total))


def _bench_hostload_pipeline(scale: str, seed: int) -> dict[str, object]:
    """Streamed paper-scale host-load characterization, end to end.

    Chunked generation -> random placement -> usage-grid scatter-adds
    -> pooled run-length durations + Tables II/III stats + mass-count,
    all without materializing the full task stream.
    """
    n_machines, horizon, tasks_per_hour = _PIPELINES[scale]

    def run():
        rng = np.random.default_rng(seed + 1)
        machines = generate_machines(n_machines, rng)
        grid = UsageGridAccumulator(
            machines, horizon, attributes=("cpu_usage", "mem_usage")
        )
        mass = MassCountAccumulator(positive_only=True)
        total = 0
        for chunk in iter_task_requests(
            horizon,
            seed=seed,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=tasks_per_hour,
        ):
            n = len(chunk)
            total += n
            slots = rng.integers(0, n_machines, n)
            start = chunk.submit_time + rng.exponential(10.0, n)
            grid.add_tasks(
                slots,
                start,
                start + chunk.duration,
                cpu=chunk.cpu_request * chunk.cpu_utilization,
                mem=chunk.mem_request * chunk.mem_utilization,
                band=priority_band_array(chunk.priority),
            )
        times, values, lengths = grid.pool("cpu_usage")
        stats = duration_stats_by_level(
            pooled_level_durations(times, values, lengths)
        )
        mass.add(values)
        return total, stats, mass.finalize()

    (total, _stats, _mc), wall, cpu = _timed(run)
    return _entry("hostload_pipeline", scale, wall, cpu, tasks=int(total))


# -- sharded backend benches ---------------------------------------------------


def _sharded_ecdf_kernel(shard) -> ECDFAccumulator:
    """Map kernel: distinct-value ECDF partial of one shard."""
    acc = ECDFAccumulator()
    acc.add(np.asarray(shard["duration"]))
    return acc


def _sharded_mass_kernel(shard) -> MassCountAccumulator:
    """Map kernel: ordered mass-count chunks of one shard."""
    acc = MassCountAccumulator()
    acc.add(np.asarray(shard["duration"]))
    return acc


def _bench_sharded_reduce(
    scale: str, seed: int, log: Callable[[str], None]
) -> list[dict[str, object]]:
    """ECDF + mass-count folds over on-disk shards vs the in-memory batch.

    Both sides reduce the same duration column to the same result
    (asserted bit-identical), so the speedup column is an honest
    backend-vs-backend measure of what the out-of-core fold costs on
    top of one materialized array. Near 1x is the expected answer —
    the point of the sharded path is bounded memory, not single-core
    wall time — and entries under the 1.5x floor are exempt from the
    retention gate.
    """
    rows = _SHARDED_ROWS[scale]
    rng = np.random.default_rng(seed)
    # Durations rounded to 0.1s: repeated values keep the merged ECDF's
    # distinct-value folding honest (continuous draws never collide).
    values = np.round(rng.exponential(3600.0, rows), 1)
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-shards-"))
    entries: list[dict[str, object]] = []
    try:
        sharded = write_table(
            Table({"duration": values}),
            tmp / "durations",
            _bench_shard_rows(rows),
        )
        # Timed regions cover fold *and* finalize on the sharded side so
        # the ratio against the one-shot batch call is like for like.
        got_ecdf, wall, cpu = _timed(
            lambda: map_reduce(sharded, _sharded_ecdf_kernel).finalize()
        )
        want_ecdf, mem_wall, _ = _timed(lambda: ecdf(values))
        if not (
            np.array_equal(got_ecdf.values, want_ecdf.values)
            and np.array_equal(got_ecdf.probabilities, want_ecdf.probabilities)
        ):
            raise AssertionError(
                "sharded_ecdf: merged ECDF diverged from the in-memory batch"
            )
        entry = _entry(
            "sharded_ecdf", scale, wall, cpu, tasks=rows, scalar_wall_s=mem_wall
        )
        entries.append(entry)
        log(f"  sharded_ecdf [{scale}] {entry['wall_s']}s "
            f"speedup={entry['speedup']}")

        got_mc, wall, cpu = _timed(
            lambda: map_reduce(sharded, _sharded_mass_kernel).finalize()
        )
        want_mc, mem_wall, _ = _timed(lambda: mass_count(values))
        if (
            got_mc.mm_distance != want_mc.mm_distance
            or got_mc.joint_ratio != want_mc.joint_ratio
        ):
            raise AssertionError(
                "sharded_masscount: merged stats diverged from the "
                "in-memory batch"
            )
        entry = _entry(
            "sharded_masscount", scale, wall, cpu,
            tasks=rows, scalar_wall_s=mem_wall,
        )
        entries.append(entry)
        log(f"  sharded_masscount [{scale}] {entry['wall_s']}s "
            f"speedup={entry['speedup']}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return entries


def _memory_machine_maxima(
    usage: Table, machines: Table
) -> dict[int, dict[str, float]]:
    """In-memory baseline: grouped series extraction, then per-machine max.

    This is the memory backend's real Fig. 7 path — one stable lexsort
    plus a per-machine series gather, then an absolute max per usage
    attribute — so ``sharded_hostload``'s speedup measures backend
    against backend on identical outputs, not against a strawman.
    """
    series = grouped_machine_series(usage, machines)
    return {
        mid: {attr: s.max_load(attr) for attr in _MAXLOAD_ATTRIBUTES}
        for mid, s in series.items()
    }


def _bench_sharded_hostload(
    scale: str, seed: int, log: Callable[[str], None]
) -> list[dict[str, object]]:
    """Fig. 7 maxima: group-aligned shard fold vs the in-memory series path.

    The sharded side streams machine-major shards through
    ``np.maximum.reduceat`` (one shard resident at a time); the
    baseline runs :func:`_memory_machine_maxima`. Results are asserted
    identical before either entry is recorded. The spill itself is
    untimed: the dataset cache writes the layout once and every
    analysis that follows reads it, so the sort cost is amortized
    exactly as it is in production.

    ``sharded_hostload_pool`` (paper scale only) folds the same kernel
    through the spawn pool with 4 workers. On a single-core host the
    entry honestly records interpreter spawn overhead rather than a
    speedup (below the 1.5x floor it is exempt from the retention
    gate); on multi-core hosts it tracks real scaling.
    """
    usage, machines = _synthetic_usage(scale, seed)
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-hostload-"))
    entries: list[dict[str, object]] = []
    try:
        spill = usage.sort_by("machine_id", "time")
        sharded = write_table(
            spill,
            tmp / "usage",
            _bench_shard_rows(len(usage)),
            group_by="machine_id",
        )
        del spill

        def fold(jobs: int = 1):
            return map_reduce(
                sharded, _machine_maxima, merge=_merge_maxima, jobs=jobs
            )

        maxima, wall, cpu = _timed(fold)
        want, mem_wall, _ = _timed(lambda: _memory_machine_maxima(usage, machines))
        if maxima != want:
            raise AssertionError(
                "sharded_hostload: per-machine maxima diverged from the "
                "grouped-series path"
            )
        entry = _entry(
            "sharded_hostload", scale, wall, cpu,
            tasks=len(usage), scalar_wall_s=mem_wall,
        )
        entries.append(entry)
        log(f"  sharded_hostload [{scale}] {entry['wall_s']}s "
            f"speedup={entry['speedup']}")

        if scale == "paper":
            pooled, wall4, cpu4 = _timed(lambda: fold(4), max_repeats=1)
            if pooled != want:
                raise AssertionError(
                    "sharded_hostload_pool: spawn-pool maxima diverged"
                )
            entry = _entry(
                "sharded_hostload_pool", scale, wall4, cpu4,
                tasks=len(usage), scalar_wall_s=mem_wall,
            )
            entries.append(entry)
            log(f"  sharded_hostload_pool [{scale}] {entry['wall_s']}s "
                f"speedup={entry['speedup']} (4 spawn workers)")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return entries


def _stream_summary_kernel(shard, horizon: float) -> dict[str, object]:
    """Map kernel for the streaming run: hourly counts + duration max."""
    hours = HourlyCountsAccumulator(horizon)
    hours.add(np.asarray(shard["submit_time"]))
    duration = np.asarray(shard["duration"])
    return {
        "hours": hours,
        "max_duration": float(duration.max()) if duration.size else 0.0,
        "rows": int(duration.size),
    }


def _merge_stream_summary(left: dict, right: dict) -> dict:
    left["hours"].merge(right["hours"])
    left["max_duration"] = max(left["max_duration"], right["max_duration"])
    left["rows"] += right["rows"]
    return left


def _stream_probe(
    dest: str,
    seed: int,
    horizon: float,
    tasks_per_hour: float,
    shard_rows: int,
) -> dict[str, float]:
    """Spawn-isolated streaming characterization (child process body).

    Spills the chunked task stream straight to two-column shards, then
    map-reduces hourly submission counts and the duration maximum over
    them — no step ever holds more than one generation chunk or one
    shard. Runs in a fresh interpreter so the returned ``ru_maxrss``
    is the pipeline's own high-water mark, not whatever the parent
    bench process touched first; that number *is* the bounded-memory
    claim, so it must not inherit the parent's footprint.
    """
    timings = Timings()
    with timings.stage("stream"):
        sharded = shard_task_requests(
            Path(dest) / "trace",
            horizon,
            seed=seed,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=tasks_per_hour,
            shard_rows=shard_rows,
            columns=_TENX_COLUMNS,
        )
        summary = map_reduce(
            sharded,
            _stream_summary_kernel,
            args=(horizon,),
            merge=_merge_stream_summary,
        )
    if summary["rows"] != sharded.num_rows:
        raise AssertionError("sharded_stream_10x: reduced row count mismatch")
    stats = timings.stages["stream"]
    return {
        "rows": float(sharded.num_rows),
        "shards": float(sharded.num_shards),
        "busiest_hour": float(np.max(summary["hours"].counts())),
        "wall_s": stats.wall_s,
        "cpu_s": stats.cpu_s,
        "peak_rss_kb": float(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        ),
    }


def _bench_sharded_stream_10x(
    seed: int, log: Callable[[str], None]
) -> dict[str, object]:
    """10x-paper (250M task) out-of-core run with its own RSS bound.

    The whole run executes in one spawned child so the recorded
    ``peak_rss_kb`` is the streaming pipeline's true bound — the
    parent's other benches materialize multi-GB tables and ``ru_maxrss``
    never comes back down. No speedup column: there is no in-memory
    baseline to compare against at a scale that exists to exceed RAM.
    """
    tmp = tempfile.mkdtemp(prefix="repro-bench-10x-")
    horizon, tasks_per_hour = _TENX_STREAM
    try:
        with ProcessPoolExecutor(1, mp_context=get_context("spawn")) as pool:
            probe = pool.submit(
                _stream_probe, tmp, seed, horizon, tasks_per_hour,
                _TENX_SHARD_ROWS,
            ).result()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    entry = _entry(
        "sharded_stream_10x", "10x-paper",
        probe["wall_s"], probe["cpu_s"], tasks=int(probe["rows"]),
    )
    entry["peak_rss_kb"] = int(probe["peak_rss_kb"])
    log(
        f"  sharded_stream_10x [10x-paper] {entry['wall_s']}s "
        f"tasks={entry['tasks_per_s']}/s shards={int(probe['shards'])} "
        f"rss={entry['peak_rss_kb']}kB"
    )
    return entry


def _lint_root() -> Path | None:
    """Repo root holding the lintable source tree, if we run from one.

    Walks up from this file looking for ``pyproject.toml`` with a
    ``[tool.reprolint]`` table; returns None under an installed wheel,
    where there is no tree to lint and the bench entry is skipped.
    """
    for parent in Path(__file__).resolve().parents:
        marker = parent / "pyproject.toml"
        if marker.is_file() and "[tool.reprolint]" in marker.read_text():
            return parent
    return None


def _bench_reprolint(log: Callable[[str], None]) -> list[dict[str, object]]:
    """Cold and warm-cache lint of the repo's own src tree.

    The warm entry's speedup (cold wall over warm wall) tracks the
    incremental cache's payoff: a warm run re-analyzes nothing, so the
    ratio collapsing toward 1x means invalidation broke.
    """
    root = _lint_root()
    if root is None:
        log("  reprolint: no source tree found, skipped")
        return []
    # The analysis layer sits above experiments by design; the bench
    # harness measures every subsystem, so this one import crosses up.
    from ..analysis.engine import lint_paths  # reprolint: disable=REP301

    cache_dir = Path(tempfile.mkdtemp(prefix="reprolint-bench-"))
    try:
        run, cold_wall, cold_cpu = _timed(
            lambda: lint_paths(
                [root / "src"], root=root, cache_dir=cache_dir
            ),
            max_repeats=1,
        )
        warm_run, warm_wall, warm_cpu = _timed(
            lambda: lint_paths(
                [root / "src"], root=root, cache_dir=cache_dir
            ),
            max_repeats=1,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    entries = [
        _entry(
            "reprolint_cold", "repo", cold_wall, cold_cpu,
            tasks=run.files_checked,
        ),
        _entry(
            "reprolint_warm", "repo", warm_wall, warm_cpu,
            tasks=warm_run.files_checked,
            scalar_wall_s=cold_wall,
        ),
    ]
    log(
        f"  reprolint [repo] cold={cold_wall:.2f}s warm={warm_wall:.2f}s "
        f"files={run.files_checked} warm_analyzed={warm_run.files_analyzed}"
    )
    return entries


def _bench_reprolint_effects(
    log: Callable[[str], None],
) -> list[dict[str, object]]:
    """Cold/warm lint restricted to the parallel-safety effect rules.

    Isolates what the effect fixpoint (worker reachability, boundary
    sites, ordered-sink flow) costs on top of parsing, and proves the
    filtered config keys its own warm cache (files_analyzed == 0 on
    the second run).
    """
    root = _lint_root()
    if root is None:
        log("  reprolint_effects: no source tree found, skipped")
        return []
    from ..analysis.engine import lint_paths  # reprolint: disable=REP301

    effect_rules = ("REP103", "REP203", "REP303")
    cache_dir = Path(tempfile.mkdtemp(prefix="reprolint-effects-bench-"))
    try:
        run, cold_wall, cold_cpu = _timed(
            lambda: lint_paths(
                [root / "src"], root=root, cache_dir=cache_dir,
                select=effect_rules,
            ),
            max_repeats=1,
        )
        warm_run, warm_wall, warm_cpu = _timed(
            lambda: lint_paths(
                [root / "src"], root=root, cache_dir=cache_dir,
                select=effect_rules,
            ),
            max_repeats=1,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    entries = [
        _entry(
            "reprolint_effects_cold", "repo", cold_wall, cold_cpu,
            tasks=run.files_checked,
        ),
        _entry(
            "reprolint_effects_warm", "repo", warm_wall, warm_cpu,
            tasks=warm_run.files_checked,
            scalar_wall_s=cold_wall,
        ),
    ]
    log(
        f"  reprolint_effects [repo] cold={cold_wall:.2f}s "
        f"warm={warm_wall:.2f}s files={run.files_checked} "
        f"warm_analyzed={warm_run.files_analyzed}"
    )
    return entries


def _bench_reprolint_cfg(
    log: Callable[[str], None],
) -> list[dict[str, object]]:
    """Cold/warm lint restricted to the crash-consistency CFG rules.

    Isolates what the per-function abstract interpretation (path and
    handle lattices, exception-path tracking) plus the lifecycle-fact
    fixpoint costs, and proves the filtered config keys its own warm
    cache (files_analyzed == 0 on the second run).
    """
    root = _lint_root()
    if root is None:
        log("  reprolint_cfg: no source tree found, skipped")
        return []
    from ..analysis.engine import lint_paths  # reprolint: disable=REP301

    cfg_rules = ("REP801", "REP802", "REP803")
    cache_dir = Path(tempfile.mkdtemp(prefix="reprolint-cfg-bench-"))
    try:
        run, cold_wall, cold_cpu = _timed(
            lambda: lint_paths(
                [root / "src"], root=root, cache_dir=cache_dir,
                select=cfg_rules,
            ),
            max_repeats=1,
        )
        warm_run, warm_wall, warm_cpu = _timed(
            lambda: lint_paths(
                [root / "src"], root=root, cache_dir=cache_dir,
                select=cfg_rules,
            ),
            max_repeats=1,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    entries = [
        _entry(
            "reprolint_cfg_cold", "repo", cold_wall, cold_cpu,
            tasks=run.files_checked,
        ),
        _entry(
            "reprolint_cfg_warm", "repo", warm_wall, warm_cpu,
            tasks=warm_run.files_checked,
            scalar_wall_s=cold_wall,
        ),
    ]
    log(
        f"  reprolint_cfg [repo] cold={cold_wall:.2f}s "
        f"warm={warm_wall:.2f}s files={run.files_checked} "
        f"warm_analyzed={warm_run.files_analyzed}"
    )
    return entries


def _bench_experiments(
    scale: str, seed: int, log: Callable[[str], None]
) -> list[dict[str, object]]:
    entries = []
    for exp_id, fn in EXPERIMENTS.items():
        _, wall, cpu = _timed(lambda: fn(scale=scale, seed=seed))
        entries.append(_entry(f"exp:{exp_id}", scale, wall, cpu))
        log(f"  exp:{exp_id} [{scale}] {wall:.2f}s")
    return entries


def run_benchmarks(
    scales: Sequence[str],
    seed: int = 0,
    *,
    experiments: bool = True,
    only: Sequence[str] | None = None,
    log: Callable[[str], None] = lambda _msg: None,
) -> list[dict[str, object]]:
    """All benchmark entries for the requested scales, in order.

    ``only`` restricts the run to the named benchmark families (entry
    ``name`` values) — e.g. ``only=("sim_drain",)`` adds the paper
    scale for the simulator without dragging in the 25M-task pipeline
    benchmarks. None (the default) runs everything.
    """

    def want(name: str) -> bool:
        return only is None or name in only

    entries: list[dict[str, object]] = []
    for scale in scales:
        if scale not in _KERNEL_GRIDS:
            raise KeyError(
                f"unknown scale {scale!r}; available: {sorted(_KERNEL_GRIDS)}"
            )
        kernel_family = (
            "series_extraction",
            "run_length_segmentation",
            "mass_count_accumulation",
        )
        if any(want(name) for name in kernel_family):
            entry, shared = _bench_series_extraction(scale, seed)
            if want("series_extraction"):
                entries.append(entry)
                log(f"  series_extraction [{scale}] {entry['wall_s']}s "
                    f"speedup={entry['speedup']}")
            if want("run_length_segmentation"):
                entry = _bench_run_length(scale, seed, shared["series"])
                entries.append(entry)
                log(f"  run_length_segmentation [{scale}] {entry['wall_s']}s "
                    f"speedup={entry['speedup']}")
            if want("mass_count_accumulation"):
                entries.append(_bench_mass_count(scale, seed, shared["series"]))
            del shared
        if want("event_drain"):
            entry = _bench_event_drain(scale, seed)
            entries.append(entry)
            log(f"  event_drain [{scale}] {entry['wall_s']}s "
                f"speedup={entry['speedup']}")
        if want("sim_drain"):
            entry = _bench_sim_drain(scale, seed)
            entries.append(entry)
            log(f"  sim_drain [{scale}] {entry['wall_s']}s "
                f"tasks={entry['tasks_per_s']}/s speedup={entry['speedup']}")
        if want("chunked_generation"):
            entries.append(_bench_chunked_generation(scale, seed))
        if want("hostload_pipeline"):
            entry = _bench_hostload_pipeline(scale, seed)
            entries.append(entry)
            log(f"  hostload_pipeline [{scale}] {entry['wall_s']}s "
                f"tasks={entry['tasks_per_s']}/s rss={entry['peak_rss_kb']}kB")
        if want("sharded_ecdf") or want("sharded_masscount"):
            entries.extend(
                e for e in _bench_sharded_reduce(scale, seed, log)
                if want(e["name"])
            )
        if want("sharded_hostload") or (
            scale == "paper" and want("sharded_hostload_pool")
        ):
            entries.extend(
                e for e in _bench_sharded_hostload(scale, seed, log)
                if want(e["name"])
            )
        if scale == "paper" and want("sharded_stream_10x"):
            entries.append(_bench_sharded_stream_10x(seed, log))
        if experiments and scale in SCALES and only is None:
            entries.extend(_bench_experiments(scale, seed, log))
    if only is None:
        entries.extend(_bench_reprolint(log))
        entries.extend(_bench_reprolint_effects(log))
        entries.extend(_bench_reprolint_cfg(log))
    return entries


# -- snapshots and regression diffs -------------------------------------------


def _snapshot_number(path: Path) -> int | None:
    match = SNAPSHOT_PATTERN.search(path.name)
    return int(match.group(1)) if match else None


def existing_snapshots(out_dir: Path) -> list[Path]:
    """BENCH_<n>.json files in ascending n order."""
    found = [
        p for p in out_dir.glob("BENCH_*.json")
        if _snapshot_number(p) is not None
    ]
    return sorted(found, key=_snapshot_number)


def next_snapshot_path(out_dir: Path) -> Path:
    snapshots = existing_snapshots(out_dir)
    n = _snapshot_number(snapshots[-1]) + 1 if snapshots else 3
    return out_dir / f"BENCH_{n}.json"


def compare_snapshots(
    baseline: dict, current: dict, *, check_wall: bool = False
) -> list[str]:
    """Regression messages (empty = clean) between two snapshots."""
    old = {(e["name"], e["scale"]): e for e in baseline["entries"]}
    problems = []
    for entry in current["entries"]:
        key = (entry["name"], entry["scale"])
        base = old.get(key)
        if base is None:
            continue
        new_speed, old_speed = entry.get("speedup"), base.get("speedup")
        if new_speed is not None and old_speed is not None:
            if (
                old_speed >= SPEEDUP_CHECK_MIN
                and new_speed < SPEEDUP_RETENTION * old_speed
                and new_speed < SPEEDUP_GRACE_FLOOR
            ):
                problems.append(
                    f"{key[0]} [{key[1]}]: speedup {old_speed:.1f}x -> "
                    f"{new_speed:.1f}x (below {SPEEDUP_RETENTION:.0%} of "
                    f"baseline and the {SPEEDUP_GRACE_FLOOR:g}x floor)"
                )
        if check_wall and base.get("wall_s"):
            ratio = entry["wall_s"] / base["wall_s"]
            if ratio > WALL_TOLERANCE:
                problems.append(
                    f"{key[0]} [{key[1]}]: wall {base['wall_s']:.3f}s -> "
                    f"{entry['wall_s']:.3f}s ({ratio:.2f}x, tolerance "
                    f"{WALL_TOLERANCE:g}x)"
                )
    return problems


# -- CLI ----------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Benchmark the vectorized kernels and registered experiments; "
            "write a BENCH_<n>.json snapshot and diff it against the "
            "previous one."
        ),
    )
    parser.add_argument(
        "--scale",
        action="append",
        choices=sorted(_KERNEL_GRIDS),
        default=None,
        help="scale(s) to benchmark, repeatable (default: small medium)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="benchmarks",
        help="snapshot directory (default: benchmarks)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="snapshot to diff against (default: newest BENCH_*.json in --out)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a speedup regresses vs the baseline",
    )
    parser.add_argument(
        "--check-wall",
        action="store_true",
        help=(
            "also compare raw wall times vs the baseline (same-machine "
            "runs only); implies --check"
        ),
    )
    parser.add_argument(
        "--skip-experiments",
        action="store_true",
        help="benchmark only the kernels, not the registered experiments",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        default=None,
        help=(
            "run only the named benchmark families (repeatable), e.g. "
            "--only sim_drain; skips experiments and lint benchmarks"
        ),
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="run and diff without writing a new snapshot",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    scales = args.scale or ["small", "medium"]
    out_dir = Path(args.out)

    def log(msg: str) -> None:
        print(msg, file=sys.stderr, flush=True)

    log(f"repro-bench: scales={scales} seed={args.seed}")
    entries = run_benchmarks(
        scales,
        args.seed,
        experiments=not args.skip_experiments,
        only=args.only,
        log=log,
    )
    snapshot = {
        "version": 1,
        "seed": args.seed,
        "scales": list(scales),
        "entries": entries,
    }

    baseline_path: Path | None = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        snapshots = existing_snapshots(out_dir)
        if snapshots:
            baseline_path = snapshots[-1]

    problems: list[str] = []
    if baseline_path is not None and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        problems = compare_snapshots(
            baseline, snapshot, check_wall=args.check_wall
        )
        log(f"baseline: {baseline_path}")
        if problems:
            for msg in problems:
                log(f"REGRESSION: {msg}")
        else:
            log("no regressions vs baseline")
    elif args.check or args.check_wall:
        log("no baseline snapshot found; nothing to check against")

    if not args.no_write:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = next_snapshot_path(out_dir)
        path.write_text(json.dumps(snapshot, indent=2) + "\n")
        log(f"wrote {path}")

    for entry in entries:
        speed = entry["speedup"]
        rate = entry["tasks_per_s"]
        print(
            f"{entry['name']:28s} {entry['scale']:7s} "
            f"wall={entry['wall_s']:>10.3f}s "
            + (f"speedup={speed:>7.2f}x " if speed is not None else " " * 17)
            + (f"rate={rate:,.0f}/s" if rate is not None else "")
        )
    if (args.check or args.check_wall) and problems:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
