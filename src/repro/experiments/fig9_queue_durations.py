"""Fig. 9 — mass-count of unchanged running-queue-state durations.

The running count is discretized into the paper's intervals ([0,9],
[10,19], [20,29], [30,39], [40,49], [50,...]) and the run lengths of
each interval are pooled over machines. The paper finds roughly a
10/90 joint ratio on the mid intervals, 15/85 on [40,49], and a much
smaller mm-distance on [40,49] (that state flips fastest).
"""

from __future__ import annotations

import numpy as np

from ..core.masscount import joint_ratio_label, mass_count
from ..core.segments import QUEUE_STATE_LEVELS, usage_level_labels
from ..hostload.queues import running_state_durations
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    labels = usage_level_labels(QUEUE_STATE_LEVELS)

    pooled: dict[int, list[np.ndarray]] = {
        i: [] for i in range(len(QUEUE_STATE_LEVELS) - 1)
    }
    for s in data.series.values():
        per_machine = running_state_durations(s.n_running, s.times)
        for lvl, durations in per_machine.items():
            if durations.size:
                pooled[lvl].append(durations)

    rows = []
    joint_small_sides = {}
    mm_by_level = {}
    for lvl in sorted(pooled):
        chunks = pooled[lvl]
        label = labels[lvl]
        if not chunks:
            rows.append((label, 0, "-", "-", "-"))
            continue
        durations = np.concatenate(chunks)
        mc = mass_count(durations)
        joint_small_sides[lvl] = mc.joint_ratio[0]
        mm_by_level[lvl] = mc.mm_distance / 60.0
        rows.append(
            (
                label,
                int(durations.size),
                joint_ratio_label(mc),
                round(mc.mm_distance / 60.0, 1),
                round(float(durations.mean()) / 60.0, 1),
            )
        )

    observed = [v for v in joint_small_sides.values()]
    return ExperimentResult(
        experiment_id="fig9",
        title="Mass-count of unchanged queuing-state durations",
        tables=(
            ResultTable.build(
                "Fig. 9: per running-count interval",
                (
                    "interval",
                    "num_runs",
                    "joint_ratio",
                    "mmdist_min",
                    "avg_duration_min",
                ),
                rows,
            ),
        ),
        metrics={
            "intervals_with_data": len(observed),
            "joint_small_side_range": (
                round(min(observed), 1),
                round(max(observed), 1),
            )
            if observed
            else (0, 0),
            "skewed_everywhere": all(v < 50 for v in observed),
        },
        paper_reference={
            "joint_ratios": "11/89, 12/88, 13/87, 16/84 on the four shown intervals",
            "mm_distance_min": "972, 845, 820, 370",
            "finding": "~90% of constant-state periods are short (Pareto)",
        },
        notes=(
            "Unchanged-state durations are heavily skewed (many short runs, "
            "few long ones) in every interval, matching Fig. 9."
        ),
    )
