"""Experiment harness: one module per table/figure of the paper."""

from .base import ExperimentResult, ResultTable
from .datasets import (
    SCALES,
    ScaleSpec,
    SimulationDataset,
    WorkloadDataset,
    simulation_dataset,
    workload_dataset,
)
from . import (
    ext1_diurnal,
    ext2_prediction,
    ext3_consolidation,
    ext4_fitting,
    ext5_modes,
    fig2_priority,
    fig3_job_length,
    fig4_masscount_length,
    fig5_interarrival,
    fig6_job_resources,
    fig7_max_load,
    fig8_queue_state,
    fig9_queue_durations,
    fig10_usage_snapshot,
    fig11_cpu_usage_mc,
    fig12_mem_usage_mc,
    fig13_hostload_compare,
    scorecard,
    tab1_submission_rate,
    tab23_level_durations,
    txt1_completion_mix,
    txt2_task_length_stats,
)
from .registry import EXPERIMENTS, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ResultTable",
    "SCALES",
    "ScaleSpec",
    "SimulationDataset",
    "WorkloadDataset",
    "run_all",
    "run_experiment",
    "simulation_dataset",
    "workload_dataset",
]
