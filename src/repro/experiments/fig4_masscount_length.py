"""Fig. 4 — mass-count disparity of task lengths, Google vs AuverGrid.

The paper reports joint ratio 6/94 with mm-distance 23.19 (days) for
Google — an extreme Pareto-principle economy where a tiny fraction of
long service tasks holds nearly all the execution-time mass — against
AuverGrid's mild 24/76 with mm-distance 0.82 days.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import MassCountAccumulator
from ..core.masscount import joint_ratio_label, mass_count
from ..synth.presets import DAY
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    sharded_map_reduce,
    sharded_task_durations,
    workload_dataset,
)

__all__ = ["run"]


def _collect_durations(shard) -> MassCountAccumulator:
    """Map kernel: pool one shard's task durations."""
    acc = MassCountAccumulator()
    acc.add(shard["duration"])
    return acc


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    backend = active_backend()
    if backend.name == "sharded":
        # Stream the duration column shard by shard; merging in shard
        # order reassembles the exact in-memory sample, so every number
        # below is byte-identical to the memory backend.
        google_lengths = sharded_map_reduce(
            sharded_task_durations(scale, seed, backend.shard_rows),
            _collect_durations,
        ).merged()
    else:
        google_lengths = np.asarray(data.google_tasks.duration)
    ag = data.grid_jobs_native["AuverGrid"]
    ag_lengths = np.asarray(ag["run_time"])

    mc_google = mass_count(google_lengths)
    mc_ag = mass_count(ag_lengths)

    rows = [
        (
            "Google",
            joint_ratio_label(mc_google),
            round(mc_google.mm_distance / DAY, 2),
            round(float(google_lengths.mean()) / 3600.0, 2),
            round(float(google_lengths.max()) / DAY, 1),
        ),
        (
            "AuverGrid",
            joint_ratio_label(mc_ag),
            round(mc_ag.mm_distance / DAY, 2),
            round(float(ag_lengths.mean()) / 3600.0, 2),
            round(float(ag_lengths.max()) / DAY, 1),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Mass-count disparity of task lengths",
        tables=(
            ResultTable.build(
                "Fig. 4: joint ratio / mm-distance / mean / max",
                ("system", "joint_ratio", "mmdist_days", "mean_hours", "max_days"),
                rows,
            ),
        ),
        metrics={
            "google_joint_small_side": round(mc_google.joint_ratio[0], 1),
            "auvergrid_joint_small_side": round(mc_ag.joint_ratio[0], 1),
            "google_more_pareto": mc_google.joint_ratio[0]
            < mc_ag.joint_ratio[0],
            "google_mmdist_days": round(mc_google.mm_distance / DAY, 2),
            "auvergrid_mmdist_days": round(mc_ag.mm_distance / DAY, 2),
        },
        paper_reference={
            "google": "joint ratio 6/94, mmdist 23.19, mean 5.6 h, max 29 d",
            "auvergrid": "joint ratio 24/76, mmdist 0.82, mean 7.2 h, max 18 d",
        },
        notes=(
            "Google's task-length distribution exhibits the Pareto principle "
            "far more strongly than AuverGrid's, matching Fig. 4."
        ),
    )
