"""Fig. 13 — host-load dynamics: Google vs AuverGrid vs SHARCNET.

Three findings: (1) Grid hosts run CPU above memory (compute-bound
science jobs) while Google hosts run memory above CPU; (2) Google CPU
load is ~20x noisier than Grid CPU load under a mean filter; (3) Grid
load is stable over hours while Google load flips within minutes.
"""

from __future__ import annotations

import numpy as np

from ..core.noise import autocorrelation, noise_stats
from ..synth.grid_hostload import GridHostConfig, generate_grid_host_series
from .base import ExperimentResult, ResultTable
from .datasets import (
    SCALES,
    active_backend,
    open_sharded,
    sharded_machine_usage,
    sharded_map_shards,
    simulation_dataset,
)

__all__ = ["run"]


def _relative_cpu_means(shard, machine_ids, cpu_caps) -> dict[int, float]:
    """Map kernel: mean relative CPU load per machine in one shard.

    ``machine_ids``/``cpu_caps`` are the machines-table columns; the
    division uses the same Python-float capacity as
    ``MachineLoadSeries.relative``, and each machine's samples are a
    contiguous time-ordered run (group-aligned spill), so every mean is
    bit-identical to the in-memory series path.
    """
    cap_of = dict(
        zip(
            np.asarray(machine_ids).tolist(),
            np.asarray(cpu_caps, dtype=np.float64).tolist(),
        )
    )
    ids = np.asarray(shard["machine_id"])
    starts = np.concatenate(([0], np.flatnonzero(ids[1:] != ids[:-1]) + 1))
    ends = np.concatenate((starts[1:], [ids.size]))
    cpu = np.asarray(shard["cpu_usage"])
    out: dict[int, float] = {}
    for k, mid in enumerate(ids[starts].tolist()):
        rel = np.clip(cpu[starts[k] : ends[k]] / cap_of[mid], 0.0, 1.0)
        out[int(mid)] = float(rel.mean())
    return out


def _sharded_google_host(data, scale, seed, backend):
    """Median-mean-CPU host's relative CPU/mem series from the spill."""
    path = sharded_machine_usage(scale, seed, backend.shard_rows)
    machines = data.result.machines
    per_shard = sharded_map_shards(
        path,
        _relative_cpu_means,
        args=(
            np.asarray(machines["machine_id"], dtype=np.int64),
            np.asarray(machines["cpu_capacity"], dtype=np.float64),
        ),
    )
    shards = open_sharded(path)
    mean_of: dict[int, float] = {}
    shard_of: dict[int, int] = {}
    for si, found in enumerate(per_shard):
        for mid, value in found.items():
            mean_of[mid] = value
            shard_of[mid] = si
    # Machines-table order with duplicates/missing skipped — the same
    # order the in-memory series dict iterates in.
    row_of: dict[int, int] = {}
    ordered: list[int] = []
    for i, machine_id in enumerate(machines["machine_id"]):
        mid = int(machine_id)
        if mid in row_of or mid not in mean_of:
            continue
        row_of[mid] = i
        ordered.append(mid)
    means = np.asarray([mean_of[mid] for mid in ordered])
    sel = ordered[int(np.argsort(means)[len(ordered) // 2])]
    shard = shards.shard(
        shard_of[sel], columns=("machine_id", "cpu_usage", "mem_usage")
    )
    ids = np.asarray(shard["machine_id"])
    lo = int(np.searchsorted(ids, sel, side="left"))
    hi = int(np.searchsorted(ids, sel, side="right"))
    row = row_of[sel]
    cpu_cap = float(machines["cpu_capacity"][row])
    mem_cap = float(machines["mem_capacity"][row])
    g_cpu = np.clip(np.asarray(shard["cpu_usage"])[lo:hi] / cpu_cap, 0.0, 1.0)
    g_mem = np.clip(np.asarray(shard["mem_usage"])[lo:hi] / mem_cap, 0.0, 1.0)
    return g_cpu, g_mem


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    horizon = SCALES[scale].sim_horizon

    backend = active_backend()
    if backend.name == "sharded":
        g_cpu, g_mem = _sharded_google_host(data, scale, seed, backend)
    else:
        # Google host: the machine with the median mean CPU load.
        series = list(data.series.values())
        means = np.asarray([s.relative("cpu").mean() for s in series])
        google = series[int(np.argsort(means)[len(means) // 2])]
        g_cpu = google.relative("cpu")
        g_mem = google.relative("mem")

    # Grid hosts: synthetic step-load nodes per the Fig. 13 model.
    ag_cfg = GridHostConfig(mean_level_duration=8 * 3600.0)
    sn_cfg = GridHostConfig(mean_level_duration=4 * 3600.0)
    _, ag_cpu, ag_mem = generate_grid_host_series(horizon, seed + 100, ag_cfg)
    _, sn_cpu, sn_mem = generate_grid_host_series(horizon, seed + 101, sn_cfg)

    rows = []
    stats: dict[str, dict[str, float]] = {}
    for name, cpu, mem in (
        ("Google", g_cpu, g_mem),
        ("AuverGrid", ag_cpu, ag_mem),
        ("SHARCNET", sn_cpu, sn_mem),
    ):
        ns = noise_stats(cpu)
        stats[name] = ns
        rows.append(
            (
                name,
                round(float(cpu.mean()), 3),
                round(float(mem.mean()), 3),
                round(ns["min"], 5),
                round(ns["mean"], 5),
                round(ns["max"], 5),
                round(autocorrelation(cpu), 4),
            )
        )

    noise_ratio = stats["Google"]["mean"] / max(
        stats["AuverGrid"]["mean"], 1e-12
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Host-load comparison: Cloud vs Grid",
        tables=(
            ResultTable.build(
                "Fig. 13: per-host CPU/memory load and noise",
                (
                    "system",
                    "mean_cpu",
                    "mean_mem",
                    "noise_min",
                    "noise_mean",
                    "noise_max",
                    "lag1_autocorr",
                ),
                rows,
            ),
        ),
        metrics={
            "google_mem_above_cpu": bool(g_mem.mean() > g_cpu.mean()),
            "grid_cpu_above_mem": bool(
                ag_cpu.mean() > ag_mem.mean() and sn_cpu.mean() > sn_mem.mean()
            ),
            "noise_ratio_google_over_auvergrid": round(float(noise_ratio), 1),
            "google_noisier": bool(noise_ratio > 2),
        },
        paper_reference={
            "noise": (
                "AuverGrid CPU noise 0.00008/0.0011/0.0026 vs Google "
                "0.00024/0.028/0.081 — ~20x on average"
            ),
            "usage_ordering": "Grid: CPU > memory; Google: CPU < memory",
            "stability": "Grid load stable for hours; Google flips in minutes",
        },
        notes=(
            "The noise ratio and the CPU/memory ordering reproduce Fig. 13; "
            "exact autocorrelation magnitudes depend on the trace's busy "
            "period and are reported, not asserted."
        ),
    )
