"""Fig. 13 — host-load dynamics: Google vs AuverGrid vs SHARCNET.

Three findings: (1) Grid hosts run CPU above memory (compute-bound
science jobs) while Google hosts run memory above CPU; (2) Google CPU
load is ~20x noisier than Grid CPU load under a mean filter; (3) Grid
load is stable over hours while Google load flips within minutes.
"""

from __future__ import annotations

import numpy as np

from ..core.noise import autocorrelation, noise_stats
from ..synth.grid_hostload import GridHostConfig, generate_grid_host_series
from .base import ExperimentResult, ResultTable
from .datasets import SCALES, simulation_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    horizon = SCALES[scale].sim_horizon

    # Google host: the machine with the median mean CPU load.
    series = list(data.series.values())
    means = np.asarray([s.relative("cpu").mean() for s in series])
    google = series[int(np.argsort(means)[len(means) // 2])]
    g_cpu = google.relative("cpu")
    g_mem = google.relative("mem")

    # Grid hosts: synthetic step-load nodes per the Fig. 13 model.
    ag_cfg = GridHostConfig(mean_level_duration=8 * 3600.0)
    sn_cfg = GridHostConfig(mean_level_duration=4 * 3600.0)
    _, ag_cpu, ag_mem = generate_grid_host_series(horizon, seed + 100, ag_cfg)
    _, sn_cpu, sn_mem = generate_grid_host_series(horizon, seed + 101, sn_cfg)

    rows = []
    stats: dict[str, dict[str, float]] = {}
    for name, cpu, mem in (
        ("Google", g_cpu, g_mem),
        ("AuverGrid", ag_cpu, ag_mem),
        ("SHARCNET", sn_cpu, sn_mem),
    ):
        ns = noise_stats(cpu)
        stats[name] = ns
        rows.append(
            (
                name,
                round(float(cpu.mean()), 3),
                round(float(mem.mean()), 3),
                round(ns["min"], 5),
                round(ns["mean"], 5),
                round(ns["max"], 5),
                round(autocorrelation(cpu), 4),
            )
        )

    noise_ratio = stats["Google"]["mean"] / max(
        stats["AuverGrid"]["mean"], 1e-12
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Host-load comparison: Cloud vs Grid",
        tables=(
            ResultTable.build(
                "Fig. 13: per-host CPU/memory load and noise",
                (
                    "system",
                    "mean_cpu",
                    "mean_mem",
                    "noise_min",
                    "noise_mean",
                    "noise_max",
                    "lag1_autocorr",
                ),
                rows,
            ),
        ),
        metrics={
            "google_mem_above_cpu": bool(g_mem.mean() > g_cpu.mean()),
            "grid_cpu_above_mem": bool(
                ag_cpu.mean() > ag_mem.mean() and sn_cpu.mean() > sn_mem.mean()
            ),
            "noise_ratio_google_over_auvergrid": round(float(noise_ratio), 1),
            "google_noisier": bool(noise_ratio > 2),
        },
        paper_reference={
            "noise": (
                "AuverGrid CPU noise 0.00008/0.0011/0.0026 vs Google "
                "0.00024/0.028/0.081 — ~20x on average"
            ),
            "usage_ordering": "Grid: CPU > memory; Google: CPU < memory",
            "stability": "Grid load stable for hours; Google flips in minutes",
        },
        notes=(
            "The noise ratio and the CPU/memory ordering reproduce Fig. 13; "
            "exact autocorrelation magnitudes depend on the trace's busy "
            "period and are reported, not asserted."
        ),
    )
