"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

from collections.abc import Callable

from . import (
    ext1_diurnal,
    ext2_prediction,
    ext3_consolidation,
    ext4_fitting,
    ext5_modes,
    fig2_priority,
    fig3_job_length,
    fig4_masscount_length,
    fig5_interarrival,
    fig6_job_resources,
    fig7_max_load,
    fig8_queue_state,
    fig9_queue_durations,
    fig10_usage_snapshot,
    fig11_cpu_usage_mc,
    fig12_mem_usage_mc,
    fig13_hostload_compare,
    scorecard,
    tab1_submission_rate,
    tab23_level_durations,
    txt1_completion_mix,
    txt2_task_length_stats,
)
from .base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

RunFn = Callable[..., ExperimentResult]

#: Experiment id -> run(scale, seed) function, in paper order.
EXPERIMENTS: dict[str, RunFn] = {
    "fig2": fig2_priority.run,
    "fig3": fig3_job_length.run,
    "fig4": fig4_masscount_length.run,
    "fig5": fig5_interarrival.run,
    "tab1": tab1_submission_rate.run,
    "fig6": fig6_job_resources.run,
    "fig7": fig7_max_load.run,
    "fig8": fig8_queue_state.run,
    "fig9": fig9_queue_durations.run,
    "fig10": fig10_usage_snapshot.run,
    "tab2": tab23_level_durations.run_cpu,
    "tab3": tab23_level_durations.run_mem,
    "fig11": fig11_cpu_usage_mc.run,
    "fig12": fig12_mem_usage_mc.run,
    "fig13": fig13_hostload_compare.run,
    "txt1": txt1_completion_mix.run,
    "txt2": txt2_task_length_stats.run,
    # Extensions: the paper's motivating applications and future work.
    "ext1": ext1_diurnal.run,
    "ext2": ext2_prediction.run,
    "ext3": ext3_consolidation.run,
    "ext4": ext4_fitting.run,
    "ext5": ext5_modes.run,
    "scorecard": scorecard.run,
}


def run_experiment(
    experiment_id: str, scale: str = "paper", seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale=scale, seed=seed)


def run_all(scale: str = "paper", seed: int = 0) -> dict[str, ExperimentResult]:
    """Run every experiment (datasets are shared via memoization)."""
    return {
        exp_id: fn(scale=scale, seed=seed)
        for exp_id, fn in EXPERIMENTS.items()
    }
