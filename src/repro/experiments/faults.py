"""Deterministic fault injection for the supervised experiment runner.

Every recovery path in :mod:`repro.experiments.supervisor` — worker
crash, hang past the timeout, in-experiment exception, corrupted cache
entry — is exercised by *injecting* the failure rather than trusting
that the code would handle it. A :class:`FaultPlan` names exactly which
``(experiment, attempt)`` pairs misbehave and how, so a faulted run is
as reproducible as a clean one: the same plan against the same registry
produces the same retries, the same counters and (because experiments
are pure functions of ``(scale, seed)``) byte-identical rendered
output.

Plans are plain JSON — either a list of fault specs or an object with a
``"faults"`` list::

    [
      {"experiment_id": "fig4", "attempt": 1, "kind": "kill"},
      {"experiment_id": "fig7", "attempt": 1, "kind": "hang", "seconds": 600},
      {"experiment_id": "tab1", "attempt": 1, "kind": "corrupt-cache"}
    ]

They activate through the CLI (``repro-run --fault-plan <path-or-json>``)
or the ``REPRO_FAULT_PLAN`` environment variable, which accepts a file
path or inline JSON. Attempts are 1-based: a ``kill`` at attempt 1
means the first try dies and the retry succeeds.

Fault kinds
-----------
``raise``
    Raise :class:`FaultInjected` inside the worker. Experiments are
    deterministic, so the supervisor classifies this as a *permanent*
    ``exception`` failure and does not retry it.
``raise-corruption``
    Raise :class:`~repro.core.diskcache.CacheCorruptionError`; the
    supervisor classifies it ``cache-corruption`` and retries.
``kill``
    ``SIGKILL`` the worker process (an OOM-kill stand-in); classified
    ``crash`` and retried.
``exit``
    Worker exits with a nonzero status; classified ``crash``.
``hang``
    Sleep ``seconds`` (default one hour) before doing any work, so the
    per-experiment timeout fires; classified ``timeout`` and retried.
``corrupt-cache``
    Truncate the payload of one on-disk dataset cache entry and drop
    the in-process memo, forcing the experiment through the cache's
    quarantine-and-rebuild path. The experiment still succeeds; the
    ``cache_quarantined`` counter records the recovery.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.diskcache import CacheCorruptionError
from ..core.timing import Timings
from . import datasets

__all__ = ["FAULT_KINDS", "FaultInjected", "FaultPlan", "FaultSpec", "plan_from_env"]

#: Environment variable holding a plan path or inline JSON.
PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_KINDS = (
    "raise",
    "raise-corruption",
    "kill",
    "exit",
    "hang",
    "corrupt-cache",
)


class FaultInjected(RuntimeError):
    """The generic injected failure (``kind: raise``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected misbehaviour, keyed by experiment and attempt."""

    experiment_id: str
    kind: str = "raise"
    attempt: int = 1
    seconds: float = 3600.0  # hang duration
    exit_code: int = 3  # for kind "exit"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise ValueError(f"attempt is 1-based, got {self.attempt}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec`, queried per attempt."""

    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_obj(cls, obj: object) -> "FaultPlan":
        """Build a plan from decoded JSON (a list, or ``{"faults": []}``)."""
        if isinstance(obj, dict):
            obj = obj.get("faults", [])
        if not isinstance(obj, list):
            raise ValueError(
                f"fault plan must be a list of specs, got {type(obj).__name__}"
            )
        return cls(faults=tuple(FaultSpec(**spec) for spec in obj))

    @classmethod
    def load(cls, source: str | Path) -> "FaultPlan":
        """Parse a plan from inline JSON or a JSON file path."""
        text = str(source)
        if not text.lstrip().startswith(("[", "{")):
            text = Path(text).read_text(encoding="utf-8")
        return cls.from_obj(json.loads(text))

    def lookup(self, experiment_id: str, attempt: int) -> FaultSpec | None:
        """The spec scheduled for this ``(experiment, attempt)``, if any."""
        for spec in self.faults:
            if spec.experiment_id == experiment_id and spec.attempt == attempt:
                return spec
        return None

    def trigger(
        self,
        experiment_id: str,
        attempt: int,
        timings: Timings | None = None,
    ) -> None:
        """Misbehave as planned for this attempt (no-op when unplanned).

        Called inside the worker before the experiment runs. ``kill``
        and ``exit`` do not return; ``raise*`` kinds raise; ``hang``
        returns only after sleeping; ``corrupt-cache`` damages the disk
        cache and returns so the experiment exercises recovery.
        """
        spec = self.lookup(experiment_id, attempt)
        if spec is None:
            return
        if timings is not None:
            timings.count("faults_injected")
        if spec.kind == "raise":
            raise FaultInjected(
                f"injected failure: {experiment_id} attempt {attempt}"
            )
        if spec.kind == "raise-corruption":
            raise CacheCorruptionError(
                f"injected cache corruption: {experiment_id} attempt {attempt}"
            )
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "exit":
            os._exit(spec.exit_code)
        if spec.kind == "hang":
            # Not a wall-clock *read*: the sleep only delays the worker
            # so the supervisor's timeout path fires; outputs stay a
            # pure function of (scale, seed).
            time.sleep(spec.seconds)
            return
        if spec.kind == "corrupt-cache":
            corrupt_one_cache_entry()


def corrupt_one_cache_entry() -> str | None:
    """Truncate one dataset cache entry and drop the in-process memo.

    Picks the lexicographically first key so repeated runs corrupt the
    same entry. Returns the corrupted key, or ``None`` when no cache is
    configured or populated. Clearing the memo forces the next dataset
    access back through the disk cache, where the truncated entry is
    quarantined and rebuilt.
    """
    cache = datasets.dataset_cache()
    if cache is None:
        return None
    keys = sorted(cache.entries())
    if not keys:
        return None
    skeleton = cache._entry_dir(keys[0]) / "skeleton.pkl"
    try:
        payload = skeleton.read_bytes()
        skeleton.write_bytes(payload[: len(payload) // 2])
    except OSError:
        return None
    datasets.workload_dataset.cache_clear()
    datasets.simulation_dataset.cache_clear()
    return keys[0]


def plan_from_env(environ: dict[str, str] | None = None) -> FaultPlan | None:
    """The plan named by ``$REPRO_FAULT_PLAN``, or ``None``."""
    env = os.environ if environ is None else environ
    source = env.get(PLAN_ENV)
    if not source:
        return None
    return FaultPlan.load(source)
