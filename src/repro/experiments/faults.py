"""Deterministic fault injection for the supervised experiment runner.

Every recovery path in :mod:`repro.experiments.supervisor` — worker
crash, hang past the timeout, in-experiment exception, corrupted cache
entry — is exercised by *injecting* the failure rather than trusting
that the code would handle it. A :class:`FaultPlan` names exactly which
``(experiment, attempt)`` pairs misbehave and how, so a faulted run is
as reproducible as a clean one: the same plan against the same registry
produces the same retries, the same counters and (because experiments
are pure functions of ``(scale, seed)``) byte-identical rendered
output.

Plans are plain JSON — either a list of fault specs or an object with a
``"faults"`` list::

    [
      {"experiment_id": "fig4", "attempt": 1, "kind": "kill"},
      {"experiment_id": "fig7", "attempt": 1, "kind": "hang", "seconds": 600},
      {"experiment_id": "tab1", "attempt": 1, "kind": "corrupt-cache"}
    ]

They activate through the CLI (``repro-run --fault-plan <path-or-json>``)
or the ``REPRO_FAULT_PLAN`` environment variable, which accepts a file
path or inline JSON. Attempts are 1-based: a ``kill`` at attempt 1
means the first try dies and the retry succeeds.

Fault kinds
-----------
``raise``
    Raise :class:`FaultInjected` inside the worker. Experiments are
    deterministic, so the supervisor classifies this as a *permanent*
    ``exception`` failure and does not retry it.
``raise-corruption``
    Raise :class:`~repro.core.diskcache.CacheCorruptionError`; the
    supervisor classifies it ``cache-corruption`` and retries.
``kill``
    ``SIGKILL`` the worker process (an OOM-kill stand-in); classified
    ``crash`` and retried.
``exit``
    Worker exits with a nonzero status; classified ``crash``.
``hang``
    Sleep ``seconds`` (default one hour) before doing any work, so the
    per-experiment timeout fires; classified ``timeout`` and retried.
``corrupt-cache``
    Truncate the payload of one on-disk dataset cache entry and drop
    the in-process memo, forcing the experiment through the cache's
    quarantine-and-rebuild path. The experiment still succeeds; the
    ``cache_quarantined`` counter records the recovery.

Out-of-core fault kinds
-----------------------
The sharded backend adds faults keyed by ``(table, block/shard,
attempt)`` instead of ``(experiment, attempt)``: ``experiment_id``
names the sharded *table kind* (for example ``workload-tasks-shards``,
or ``"*"`` for any table). ``kill-worker``, ``hang-block`` and
``corrupt-shard`` fire inside a map-reduce block worker (via
:class:`ShardFaultInjector`) before the block runs; ``torn-spill``
``SIGKILL``\\ s the spilling process after the first column of shard
``shard`` hits disk but before the shard is journaled — the torn shard
must be dropped and the spill resumed (via :func:`spill_fault_hook`,
which only fires on fresh spills so the resumed attempt survives).

``kill-worker``
    ``SIGKILL`` the block worker; the supervised pool classifies a
    ``crash``, backs off and retries (``mapreduce_crashes`` /
    ``mapreduce_retries``).
``hang-block``
    Sleep ``seconds`` in the worker so the per-block timeout fires
    (``mapreduce_block_timeouts``).
``corrupt-shard``
    Flip the last byte of one column file of shard ``shard`` in the
    table being mapped. Structural checks still pass but the digest
    does not, so the reading worker raises
    :class:`~repro.core.shard.ShardIntegrityError` and the table is
    quarantined and re-derived (``shards_quarantined`` /
    ``shards_rederived``).
``torn-spill``
    Kill the spill mid-shard; the next attempt resumes from the
    journaled prefix (``spills_resumed`` / ``spill_shards_reused``).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.diskcache import CacheCorruptionError
from ..core.timing import Timings
from . import datasets

__all__ = [
    "FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "ShardFaultInjector",
    "corrupt_shard_column",
    "plan_from_env",
    "spill_fault_hook",
]

#: Environment variable holding a plan path or inline JSON.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Kinds that fire inside a map-reduce block worker, keyed by
#: ``(table, block, attempt)``.
BLOCK_FAULT_KINDS = ("kill-worker", "hang-block", "corrupt-shard")

#: All out-of-core kinds (block faults plus the spill fault).
SHARD_FAULT_KINDS = BLOCK_FAULT_KINDS + ("torn-spill",)

FAULT_KINDS = (
    "raise",
    "raise-corruption",
    "kill",
    "exit",
    "hang",
    "corrupt-cache",
) + SHARD_FAULT_KINDS


class FaultInjected(RuntimeError):
    """The generic injected failure (``kind: raise``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected misbehaviour.

    Experiment-level kinds are keyed by ``(experiment_id, attempt)``;
    out-of-core kinds key ``experiment_id`` as a sharded *table kind*
    (``"*"`` matches any table) plus ``block`` (map-reduce block index,
    for block faults) or ``shard`` (shard index, for ``corrupt-shard``
    and ``torn-spill``).
    """

    experiment_id: str
    kind: str = "raise"
    attempt: int = 1
    seconds: float = 3600.0  # hang duration
    exit_code: int = 3  # for kind "exit"
    block: int | None = None  # map-reduce block index (block faults)
    shard: int | None = None  # shard index (corrupt-shard / torn-spill)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise ValueError(f"attempt is 1-based, got {self.attempt}")
        if self.kind in BLOCK_FAULT_KINDS and self.block is None:
            raise ValueError(f"fault kind {self.kind!r} requires a block index")
        if self.kind in ("corrupt-shard", "torn-spill") and self.shard is None:
            raise ValueError(f"fault kind {self.kind!r} requires a shard index")
        if self.block is not None and self.block < 0:
            raise ValueError(f"block index must be >= 0, got {self.block}")
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"shard index must be >= 0, got {self.shard}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec`, queried per attempt."""

    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_obj(cls, obj: object) -> "FaultPlan":
        """Build a plan from decoded JSON (a list, or ``{"faults": []}``)."""
        if isinstance(obj, dict):
            obj = obj.get("faults", [])
        if not isinstance(obj, list):
            raise ValueError(
                f"fault plan must be a list of specs, got {type(obj).__name__}"
            )
        return cls(faults=tuple(FaultSpec(**spec) for spec in obj))

    @classmethod
    def load(cls, source: str | Path) -> "FaultPlan":
        """Parse a plan from inline JSON or a JSON file path."""
        text = str(source)
        if not text.lstrip().startswith(("[", "{")):
            text = Path(text).read_text(encoding="utf-8")
        return cls.from_obj(json.loads(text))

    def lookup(self, experiment_id: str, attempt: int) -> FaultSpec | None:
        """The spec scheduled for this ``(experiment, attempt)``, if any."""
        for spec in self.faults:
            if spec.kind in SHARD_FAULT_KINDS:
                continue
            if spec.experiment_id == experiment_id and spec.attempt == attempt:
                return spec
        return None

    def lookup_block(
        self, table: str, block: int, attempt: int
    ) -> FaultSpec | None:
        """The block fault scheduled for ``(table, block, attempt)``."""
        for spec in self.faults:
            if (
                spec.kind in BLOCK_FAULT_KINDS
                and spec.experiment_id in (table, "*")
                and spec.block == block
                and spec.attempt == attempt
            ):
                return spec
        return None

    def lookup_spill(self, table: str, shard: int) -> FaultSpec | None:
        """The torn-spill fault scheduled for ``(table, shard)``."""
        for spec in self.faults:
            if (
                spec.kind == "torn-spill"
                and spec.experiment_id in (table, "*")
                and spec.shard == shard
            ):
                return spec
        return None

    def has_shard_faults(self, table: str) -> bool:
        """Whether any out-of-core fault targets this table kind."""
        return any(
            spec.kind in SHARD_FAULT_KINDS
            and spec.experiment_id in (table, "*")
            for spec in self.faults
        )

    def trigger(
        self,
        experiment_id: str,
        attempt: int,
        timings: Timings | None = None,
    ) -> None:
        """Misbehave as planned for this attempt (no-op when unplanned).

        Called inside the worker before the experiment runs. ``kill``
        and ``exit`` do not return; ``raise*`` kinds raise; ``hang``
        returns only after sleeping; ``corrupt-cache`` damages the disk
        cache and returns so the experiment exercises recovery.
        """
        spec = self.lookup(experiment_id, attempt)
        if spec is None:
            return
        if timings is not None:
            timings.count("faults_injected")
        if spec.kind == "raise":
            raise FaultInjected(
                f"injected failure: {experiment_id} attempt {attempt}"
            )
        if spec.kind == "raise-corruption":
            raise CacheCorruptionError(
                f"injected cache corruption: {experiment_id} attempt {attempt}"
            )
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "exit":
            os._exit(spec.exit_code)
        if spec.kind == "hang":
            # Not a wall-clock *read*: the sleep only delays the worker
            # so the supervisor's timeout path fires; outputs stay a
            # pure function of (scale, seed).
            time.sleep(spec.seconds)
            return
        if spec.kind == "corrupt-cache":
            corrupt_one_cache_entry()


@dataclass(frozen=True)
class ShardFaultInjector:
    """Picklable ``inject(root, block, attempt)`` hook for block workers.

    Crosses the spawn pickle boundary into map-reduce workers, so it
    carries only the (frozen) plan and the table kind it guards. A
    block fault fires at most once per ``(block, attempt)``; retried
    attempts look up a different key and proceed clean — exactly the
    discipline experiment-level faults follow.
    """

    plan: FaultPlan
    table: str

    def __call__(self, root: str, block: int, attempt: int) -> None:
        spec = self.plan.lookup_block(self.table, block, attempt)
        if spec is None:
            return
        if spec.kind == "kill-worker":
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.kind == "hang-block":
            # Delays the worker so the per-block timeout fires; the
            # block's *content* is untouched (see ``hang`` above).
            time.sleep(spec.seconds)
        elif spec.kind == "corrupt-shard":
            corrupt_shard_column(root, spec.shard)


def corrupt_shard_column(root: str | Path, shard: int) -> str | None:
    """Flip the last byte of one column file of a shard; return its path.

    The flipped byte lives past the npy header, so the table still
    passes structural open-time validation (shard dirs present, row
    counts consistent) but fails its sha256 digest check — the exact
    signature of silent media corruption the integrity layer exists to
    catch. Returns ``None`` when the shard directory has no columns.
    """
    shard_dir = Path(root) / f"shard-{shard:05d}"
    columns = sorted(shard_dir.glob("*.npy"))
    if not columns:
        return None
    target = columns[0]
    try:
        payload = bytearray(target.read_bytes())
        if not payload:
            return None
        payload[-1] ^= 0xFF
        target.write_bytes(bytes(payload))
    except OSError:
        return None
    return str(target)


def spill_fault_hook(plan: FaultPlan, table: str):
    """``on_event`` hook for :class:`~repro.core.shard.ShardWriter`.

    ``SIGKILL``\\ s the spilling process after the first column of a
    targeted shard is written but before the shard is journaled —
    leaving exactly the torn, unjournaled trailing shard the resume
    path must detect and drop. Fires only on fresh spills
    (``resumed_shards == 0``): the resumed attempt replays the same
    shard index but survives, so the spill completes. Returns ``None``
    when the plan has no torn-spill fault for this table.
    """
    if not any(
        spec.kind == "torn-spill" and spec.experiment_id in (table, "*")
        for spec in plan.faults
    ):
        return None

    def hook(event: str, shard: int, resumed_shards: int) -> None:
        if event != "column-written" or resumed_shards:
            return
        if plan.lookup_spill(table, shard) is not None:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def corrupt_one_cache_entry() -> str | None:
    """Truncate one dataset cache entry and drop the in-process memo.

    Picks the lexicographically first key so repeated runs corrupt the
    same entry. Returns the corrupted key, or ``None`` when no cache is
    configured or populated. Clearing the memo forces the next dataset
    access back through the disk cache, where the truncated entry is
    quarantined and rebuilt.
    """
    cache = datasets.dataset_cache()
    if cache is None:
        return None
    keys = sorted(cache.entries())
    if not keys:
        return None
    skeleton = cache._entry_dir(keys[0]) / "skeleton.pkl"
    try:
        payload = skeleton.read_bytes()
        skeleton.write_bytes(payload[: len(payload) // 2])
    except OSError:
        return None
    datasets.workload_dataset.cache_clear()
    datasets.simulation_dataset.cache_clear()
    return keys[0]


def plan_from_env(environ: dict[str, str] | None = None) -> FaultPlan | None:
    """The plan named by ``$REPRO_FAULT_PLAN``, or ``None``."""
    env = os.environ if environ is None else environ
    source = env.get(PLAN_ENV)
    if not source:
        return None
    return FaultPlan.load(source)
