"""Extension 5 — common modes of host load.

The introduction's scheduling use case: "by characterizing common modes
of host load within a data center, a job scheduler can use this
information for task allocation". Clusters the simulated fleet into
load modes and reports each mode's signature (Fig. 10's narration —
light/heavy/alternating machines — made quantitative).
"""

from __future__ import annotations

import numpy as np

from ..hostload.modes import discover_modes
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0, k: int = 4) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    modes = discover_modes(data.series, k=k, seed=seed)

    rows = []
    for j, desc in enumerate(modes.describe()):
        rows.append(
            (
                j,
                desc["size"],
                round(desc["cpu_mean"], 3),
                round(desc["cpu_std"], 3),
                round(desc["mem_mean"], 3),
                round(desc["mem_std"], 3),
                round(desc["cpu_autocorr"], 2),
            )
        )

    sizes = modes.mode_sizes()
    cpu_means = modes.centroids_raw[:, 0]
    # Separation in standardized feature space: mean pairwise centroid
    # distance (> ~1 std means genuinely distinct behaviour groups).
    c = modes.centroids
    dists = [
        float(np.linalg.norm(c[i] - c[j]))
        for i in range(len(c))
        for j in range(i + 1, len(c))
    ]
    separation = float(np.mean(dists)) if dists else 0.0
    return ExperimentResult(
        experiment_id="ext5",
        title="Common modes of host load",
        tables=(
            ResultTable.build(
                f"k-means load modes (k={k}) over the fleet",
                (
                    "mode",
                    "machines",
                    "cpu_mean",
                    "cpu_std",
                    "mem_mean",
                    "mem_std",
                    "cpu_autocorr",
                ),
                rows,
            ),
        ),
        metrics={
            "num_modes": int(modes.num_modes),
            "largest_mode_share": round(
                float(sizes.max() / sizes.sum()), 3
            ),
            "mode_cpu_spread": round(
                float(cpu_means.max() - cpu_means.min()), 3
            ),
            "centroid_separation_std": round(separation, 2),
            "distinct_modes_found": bool(separation > 1.0),
        },
        paper_reference={
            "finding": (
                "machines split into light, heavy, alternating and "
                "irregular memory/CPU usage patterns (Sec. IV.B.2)"
            ),
        },
        notes="Modes differ mainly in mean level and volatility.",
    )
