"""Extension 3 — consolidation potential of the simulated fleet.

Quantifies the introduction's motivating use case: with CPUs ~35% busy
and memory ~60% full, how many machines could a consolidating resource
manager power down?
"""

from __future__ import annotations

from ..apps.consolidation import consolidation_potential
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run"]

_HEADROOMS = (0.05, 0.1, 0.2)


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)

    rows = []
    reports = {}
    for headroom in _HEADROOMS:
        report = consolidation_potential(
            data.series, headroom=headroom, stride=12
        )
        reports[headroom] = report
        rows.append(
            (
                headroom,
                report.fleet_size,
                round(report.mean_needed, 1),
                report.peak_needed,
                round(report.mean_shutoff_fraction, 3),
                round(report.always_shutoff_fraction, 3),
            )
        )

    base = reports[0.1]
    return ExperimentResult(
        experiment_id="ext3",
        title="Fleet consolidation potential",
        tables=(
            ResultTable.build(
                "machines needed when bin-packing measured demand hourly",
                (
                    "headroom",
                    "fleet",
                    "mean_needed",
                    "peak_needed",
                    "mean_shutoff",
                    "always_shutoff",
                ),
                rows,
            ),
        ),
        metrics={
            "mean_shutoff_fraction": round(base.mean_shutoff_fraction, 3),
            "always_shutoff_fraction": round(base.always_shutoff_fraction, 3),
            "consolidation_worthwhile": base.mean_shutoff_fraction > 0.1,
        },
        paper_reference={
            "finding": (
                "the resource management system can proactively shift and "
                "consolidate load via (VM) migration ... using fewer "
                "machines and shutting off unneeded hosts (Sec. I)"
            ),
        },
        notes=(
            "Memory is the binding resource (usage ~60-70% vs CPU ~35%), "
            "capping the shutoff fraction well below the CPU idleness."
        ),
    )
