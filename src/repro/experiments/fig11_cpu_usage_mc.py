"""Fig. 11 — mass-count disparity of relative CPU usage.

Paper: joint ratio ~40/60 with mm-distance ~13% (all priorities) and
~38/62 / ~13% (high priority only); cluster CPU load ~35% overall,
~20% for high-priority tasks — a fairly uniform usage distribution.
"""

from __future__ import annotations

import numpy as np

from ..hostload.levels import usage_mass_count
from ..hostload.priority import band_usage
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)

    mc_all = usage_mass_count(data.series, "cpu")
    mc_high = usage_mass_count(data.series, "cpu_high")

    mean_all = float(
        np.mean([band_usage(s, "cpu", "all").mean() for s in data.series.values()])
    )
    mean_high = float(
        np.mean([band_usage(s, "cpu", "high").mean() for s in data.series.values()])
    )

    rows = [
        (
            "all priorities",
            f"{mc_all.joint_ratio[0]:.0f}/{mc_all.joint_ratio[1]:.0f}",
            round(100 * mc_all.mm_distance_relative(1.0), 1),
            round(100 * mean_all, 1),
        ),
        (
            "high priority",
            f"{mc_high.joint_ratio[0]:.0f}/{mc_high.joint_ratio[1]:.0f}",
            round(100 * mc_high.mm_distance_relative(1.0), 1),
            round(100 * mean_high, 1),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig11",
        title="Mass-count disparity of CPU usage",
        tables=(
            ResultTable.build(
                "Fig. 11: CPU usage mass-count",
                ("tasks", "joint_ratio", "mmdist_%", "mean_usage_%"),
                rows,
            ),
        ),
        metrics={
            "all_joint_small_side": round(mc_all.joint_ratio[0], 1),
            "high_joint_small_side": round(mc_high.joint_ratio[0], 1),
            "mean_cpu_usage_pct": round(100 * mean_all, 1),
            "mean_cpu_usage_high_pct": round(100 * mean_high, 1),
            "high_band_uses_less": mean_high < mean_all,
            "near_uniform": mc_all.joint_ratio[0] > 30,
        },
        paper_reference={
            "all": "joint ratio 40/60, mmdist 13%, load ~35%",
            "high": "joint ratio 38/62, mmdist 13%, load ~20%",
        },
        notes=(
            "CPU usage is fairly uniform (large joint ratio, small "
            "mm-distance), and high-priority load is well below total load."
        ),
    )
