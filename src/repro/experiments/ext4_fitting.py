"""Extension 4 — best-fit distribution families for task lengths.

The paper's future work: find the best-fit load model. We fit the
candidate families to the Google task-length sample and to AuverGrid's
job lengths. AuverGrid collapses onto a single lognormal; Google's
body+service-tail mixture resists every single-family fit (large KS for
all candidates) — direct evidence that Cloud workloads need mixture
models.
"""

from __future__ import annotations

import numpy as np

from ..core.fit import fit_best
from .base import ExperimentResult, ResultTable
from .datasets import workload_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    rng = np.random.default_rng(seed + 300)

    google = np.asarray(data.google_tasks.duration)
    if google.size > 60_000:
        google = rng.choice(google, 60_000, replace=False)
    auvergrid = np.asarray(data.grid_jobs_native["AuverGrid"]["run_time"])

    rows = []
    results = {}
    for name, sample in (("Google", google), ("AuverGrid", auvergrid)):
        fits = fit_best(sample)
        results[name] = fits
        for f in fits:
            rows.append(
                (
                    name,
                    f.family,
                    round(f.ks, 4),
                    ", ".join(f"{k}={v:.3g}" for k, v in f.params.items()),
                )
            )

    best_google = results["Google"][0]
    best_ag = results["AuverGrid"][0]
    return ExperimentResult(
        experiment_id="ext4",
        title="Best-fit distribution families for task lengths",
        tables=(
            ResultTable.build(
                "MLE fits ranked by AIC (best first per system)",
                ("system", "family", "KS", "parameters"),
                rows,
            ),
        ),
        metrics={
            "google_best_family": best_google.family,
            "google_best_ks": round(best_google.ks, 4),
            "auvergrid_best_family": best_ag.family,
            "auvergrid_best_ks": round(best_ag.ks, 4),
            "auvergrid_single_family_adequate": best_ag.ks < 0.05,
            "google_needs_mixture": best_google.ks > best_ag.ks,
        },
        paper_reference={
            "finding": (
                "future work: exploit the best-fit load prediction method "
                "based on our characterization (Sec. VI)"
            ),
        },
        notes=(
            "Grid lengths fit one lognormal; Cloud lengths need the "
            "body+service-tail mixture the generator uses."
        ),
    )
