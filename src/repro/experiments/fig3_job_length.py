"""Fig. 3 — CDF of job length, Google versus seven Grid/HPC systems.

Headline shape: over 80% of Google jobs end within 1000 s while most
Grid jobs run longer than 2000 s.
"""

from __future__ import annotations

import numpy as np

from ..core.ecdf import ecdf
from .base import ExperimentResult, ResultTable
from .datasets import grid_system_names, workload_dataset

__all__ = ["run", "CDF_POINTS"]

#: Job-length evaluation grid (seconds), matching the figure's x-axis.
CDF_POINTS = (500, 1000, 2000, 4000, 6000, 8000, 10000)


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)

    systems: dict[str, np.ndarray] = {
        "Google": np.asarray(
            data.google_jobs["end_time"] - data.google_jobs["submit_time"]
        )
    }
    for name in grid_system_names():
        jobs = data.grid_jobs[name]
        systems[name] = np.asarray(jobs["end_time"] - jobs["submit_time"])

    rows = []
    cdfs: dict[str, object] = {}
    for name, lengths in systems.items():
        cdf = ecdf(lengths)
        cdfs[name] = cdf
        rows.append((name, *(round(float(cdf(x)), 3) for x in CDF_POINTS)))

    google_under_1000 = float(cdfs["Google"](1000.0))
    grids_over_2000 = {
        name: round(1.0 - float(cdfs[name](2000.0)), 3)
        for name in systems
        if name != "Google"
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="CDF of job length, Google vs Grid/HPC",
        tables=(
            ResultTable.build(
                "Fig. 3: P(job length <= x seconds)",
                ("system", *(f"<={x}s" for x in CDF_POINTS)),
                rows,
            ),
        ),
        metrics={
            "google_frac_under_1000s": round(google_under_1000, 3),
            "min_grid_frac_over_2000s": round(min(grids_over_2000.values()), 3),
            "grids_mostly_over_2000s": all(
                v > 0.5 for v in grids_over_2000.values()
            ),
        },
        paper_reference={
            "google_frac_under_1000s": ">0.80",
            "finding": "most Grid jobs are longer than 2000 s",
        },
        notes=(
            "The Google CDF dominates every Grid CDF at small lengths; the "
            "crossover shape matches Fig. 3."
        ),
    )
