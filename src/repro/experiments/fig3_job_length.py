"""Fig. 3 — CDF of job length, Google versus seven Grid/HPC systems.

Headline shape: over 80% of Google jobs end within 1000 s while most
Grid jobs run longer than 2000 s.
"""

from __future__ import annotations

import numpy as np

from ..core.ecdf import ecdf
from ..core.kernels import ECDFAccumulator
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    grid_system_names,
    sharded_google_jobs,
    sharded_map_reduce,
    workload_dataset,
)

__all__ = ["run", "CDF_POINTS"]

#: Job-length evaluation grid (seconds), matching the figure's x-axis.
CDF_POINTS = (500, 1000, 2000, 4000, 6000, 8000, 10000)


def _collect_lengths(shard) -> ECDFAccumulator:
    """Map kernel: pool one shard's job lengths into ECDF state."""
    acc = ECDFAccumulator()
    acc.add(np.asarray(shard["end_time"]) - np.asarray(shard["submit_time"]))
    return acc


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    backend = active_backend()

    cdfs: dict[str, object] = {}
    if backend.name == "sharded":
        # ECDF state merges exactly (value-keyed integer counts), so the
        # streamed Google CDF is bit-identical to the in-memory one; the
        # small Grid tables stay in memory either way.
        cdfs["Google"] = sharded_map_reduce(
            sharded_google_jobs(scale, seed, backend.shard_rows),
            _collect_lengths,
        ).finalize()
    else:
        cdfs["Google"] = ecdf(
            np.asarray(
                data.google_jobs["end_time"] - data.google_jobs["submit_time"]
            )
        )
    for name in grid_system_names():
        jobs = data.grid_jobs[name]
        cdfs[name] = ecdf(np.asarray(jobs["end_time"] - jobs["submit_time"]))

    rows = [
        (name, *(round(float(cdf(x)), 3) for x in CDF_POINTS))
        for name, cdf in cdfs.items()
    ]

    google_under_1000 = float(cdfs["Google"](1000.0))
    grids_over_2000 = {
        name: round(1.0 - float(cdfs[name](2000.0)), 3)
        for name in cdfs
        if name != "Google"
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="CDF of job length, Google vs Grid/HPC",
        tables=(
            ResultTable.build(
                "Fig. 3: P(job length <= x seconds)",
                ("system", *(f"<={x}s" for x in CDF_POINTS)),
                rows,
            ),
        ),
        metrics={
            "google_frac_under_1000s": round(google_under_1000, 3),
            "min_grid_frac_over_2000s": round(min(grids_over_2000.values()), 3),
            "grids_mostly_over_2000s": all(
                v > 0.5 for v in grids_over_2000.values()
            ),
        },
        paper_reference={
            "google_frac_under_1000s": ">0.80",
            "finding": "most Grid jobs are longer than 2000 s",
        },
        notes=(
            "The Google CDF dominates every Grid CDF at small lengths; the "
            "crossover shape matches Fig. 3."
        ),
    )
