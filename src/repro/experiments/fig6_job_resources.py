"""Fig. 6 — per-job CPU usage (Eq. 4) and memory usage CDFs.

Google jobs mostly need less than one processor (interactive work);
AuverGrid/DAS-2 jobs are parallel programs whose Eq.-4 usage clusters
at integer processor counts. Google memory per job, rescaled under a
32/64 GB node assumption, stays far below Grid jobs' footprints.
"""

from __future__ import annotations

import numpy as np

from ..core.ecdf import ecdf
from ..core.usage import memory_usage_mb
from .base import ExperimentResult, ResultTable
from .datasets import workload_dataset

__all__ = ["run", "CPU_POINTS", "MEM_POINTS_MB"]

CPU_POINTS = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
MEM_POINTS_MB = (50, 100, 200, 400, 600, 800, 1000)

_CPU_SYSTEMS = ("AuverGrid", "DAS-2")
_MEM_SYSTEMS = ("AuverGrid", "SHARCNET", "DAS-2")


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)

    # -- Fig. 6(a): CPU usage over all processors -------------------------
    cpu_rows = []
    cpu_cdfs = {}
    google_cpu = np.asarray(data.google_jobs["cpu_usage"])
    cpu_cdfs["Google"] = ecdf(google_cpu)
    for name in _CPU_SYSTEMS:
        cpu_cdfs[name] = ecdf(np.asarray(data.grid_jobs[name]["cpu_usage"]))
    for name, cdf in cpu_cdfs.items():
        cpu_rows.append((name, *(round(float(cdf(x)), 3) for x in CPU_POINTS)))

    # -- Fig. 6(b): memory usage in MB ------------------------------------
    mem_rows = []
    mem_cdfs = {}
    google_mem_norm = np.asarray(data.google_jobs["mem_usage"])
    for cap_gb in (32.0, 64.0):
        mem_cdfs[f"Google(MaxCap={cap_gb:.0f}GB)"] = ecdf(
            memory_usage_mb(google_mem_norm, cap_gb)
        )
    for name in _MEM_SYSTEMS:
        kb = np.asarray(data.grid_jobs_native[name]["used_memory"])
        mem_cdfs[name] = ecdf(kb / 1024.0)
    for name, cdf in mem_cdfs.items():
        mem_rows.append(
            (name, *(round(float(cdf(x)), 3) for x in MEM_POINTS_MB))
        )

    google_under_1cpu = float(cpu_cdfs["Google"](1.0))
    grid_under_1cpu = min(
        float(cpu_cdfs[name](1.0)) for name in _CPU_SYSTEMS
    )
    g32 = mem_cdfs["Google(MaxCap=32GB)"]
    grid_mem_median = {
        name: float(mem_cdfs[name].quantile(0.5)) for name in _MEM_SYSTEMS
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="Per-job CPU and memory usage",
        tables=(
            ResultTable.build(
                "Fig. 6(a): P(CPU usage <= x processors)",
                ("system", *(f"<={x}" for x in CPU_POINTS)),
                cpu_rows,
            ),
            ResultTable.build(
                "Fig. 6(b): P(memory usage <= x MB)",
                ("system", *(f"<={x}MB" for x in MEM_POINTS_MB)),
                mem_rows,
            ),
        ),
        metrics={
            "google_frac_under_1_cpu": round(google_under_1cpu, 3),
            "min_grid_frac_under_1_cpu": round(grid_under_1cpu, 3),
            "google_lower_cpu": google_under_1cpu > grid_under_1cpu,
            "google_mem_median_mb_32gb": round(float(g32.quantile(0.5)), 1),
            "min_grid_mem_median_mb": round(min(grid_mem_median.values()), 1),
        },
        paper_reference={
            "cpu": "a large majority of Google jobs need <= 1 processor",
            "mem": "Google jobs' memory stays small versus Grid jobs",
        },
        notes=(
            "Google CDFs dominate at low usage on both axes, matching the "
            "figure: interactive Cloud jobs demand far fewer resources."
        ),
    )
