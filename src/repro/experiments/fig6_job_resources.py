"""Fig. 6 — per-job CPU usage (Eq. 4) and memory usage CDFs.

Google jobs mostly need less than one processor (interactive work);
AuverGrid/DAS-2 jobs are parallel programs whose Eq.-4 usage clusters
at integer processor counts. Google memory per job, rescaled under a
32/64 GB node assumption, stays far below Grid jobs' footprints.
"""

from __future__ import annotations

import numpy as np

from ..core.ecdf import ecdf
from ..core.kernels import ECDFAccumulator
from ..core.usage import memory_usage_mb
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    sharded_google_jobs,
    sharded_map_reduce,
    workload_dataset,
)

__all__ = ["run", "CPU_POINTS", "MEM_POINTS_MB"]

CPU_POINTS = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
MEM_POINTS_MB = (50, 100, 200, 400, 600, 800, 1000)

_CPU_SYSTEMS = ("AuverGrid", "DAS-2")
_MEM_SYSTEMS = ("AuverGrid", "SHARCNET", "DAS-2")


class _UsageAccumulator:
    """Mergeable Fig. 6 state: one ECDF per Google usage curve.

    ``memory_usage_mb`` is elementwise, so applying it per shard and
    pooling gives the same value multiset — and the ECDF state merges
    exactly — so every finalized CDF is bit-identical to the in-memory
    computation over the full columns.
    """

    def __init__(self) -> None:
        self.cpu = ECDFAccumulator()
        self.mem32 = ECDFAccumulator()
        self.mem64 = ECDFAccumulator()

    def merge(self, other: "_UsageAccumulator") -> "_UsageAccumulator":
        self.cpu.merge(other.cpu)
        self.mem32.merge(other.mem32)
        self.mem64.merge(other.mem64)
        return self


def _collect_usage(shard) -> _UsageAccumulator:
    """Map kernel: one shard's CPU and rescaled-memory usage."""
    acc = _UsageAccumulator()
    acc.cpu.add(np.asarray(shard["cpu_usage"]))
    mem_norm = np.asarray(shard["mem_usage"])
    acc.mem32.add(memory_usage_mb(mem_norm, 32.0))
    acc.mem64.add(memory_usage_mb(mem_norm, 64.0))
    return acc


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    backend = active_backend()

    google_usage: _UsageAccumulator | None = None
    if backend.name == "sharded":
        google_usage = sharded_map_reduce(
            sharded_google_jobs(scale, seed, backend.shard_rows),
            _collect_usage,
        )

    # -- Fig. 6(a): CPU usage over all processors -------------------------
    cpu_rows = []
    cpu_cdfs = {}
    if google_usage is not None:
        cpu_cdfs["Google"] = google_usage.cpu.finalize()
    else:
        cpu_cdfs["Google"] = ecdf(np.asarray(data.google_jobs["cpu_usage"]))
    for name in _CPU_SYSTEMS:
        cpu_cdfs[name] = ecdf(np.asarray(data.grid_jobs[name]["cpu_usage"]))
    for name, cdf in cpu_cdfs.items():
        cpu_rows.append((name, *(round(float(cdf(x)), 3) for x in CPU_POINTS)))

    # -- Fig. 6(b): memory usage in MB ------------------------------------
    mem_rows = []
    mem_cdfs = {}
    if google_usage is not None:
        mem_cdfs["Google(MaxCap=32GB)"] = google_usage.mem32.finalize()
        mem_cdfs["Google(MaxCap=64GB)"] = google_usage.mem64.finalize()
    else:
        google_mem_norm = np.asarray(data.google_jobs["mem_usage"])
        for cap_gb in (32.0, 64.0):
            mem_cdfs[f"Google(MaxCap={cap_gb:.0f}GB)"] = ecdf(
                memory_usage_mb(google_mem_norm, cap_gb)
            )
    for name in _MEM_SYSTEMS:
        kb = np.asarray(data.grid_jobs_native[name]["used_memory"])
        mem_cdfs[name] = ecdf(kb / 1024.0)
    for name, cdf in mem_cdfs.items():
        mem_rows.append(
            (name, *(round(float(cdf(x)), 3) for x in MEM_POINTS_MB))
        )

    google_under_1cpu = float(cpu_cdfs["Google"](1.0))
    grid_under_1cpu = min(
        float(cpu_cdfs[name](1.0)) for name in _CPU_SYSTEMS
    )
    g32 = mem_cdfs["Google(MaxCap=32GB)"]
    grid_mem_median = {
        name: float(mem_cdfs[name].quantile(0.5)) for name in _MEM_SYSTEMS
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="Per-job CPU and memory usage",
        tables=(
            ResultTable.build(
                "Fig. 6(a): P(CPU usage <= x processors)",
                ("system", *(f"<={x}" for x in CPU_POINTS)),
                cpu_rows,
            ),
            ResultTable.build(
                "Fig. 6(b): P(memory usage <= x MB)",
                ("system", *(f"<={x}MB" for x in MEM_POINTS_MB)),
                mem_rows,
            ),
        ),
        metrics={
            "google_frac_under_1_cpu": round(google_under_1cpu, 3),
            "min_grid_frac_under_1_cpu": round(grid_under_1cpu, 3),
            "google_lower_cpu": google_under_1cpu > grid_under_1cpu,
            "google_mem_median_mb_32gb": round(float(g32.quantile(0.5)), 1),
            "min_grid_mem_median_mb": round(min(grid_mem_median.values()), 1),
        },
        paper_reference={
            "cpu": "a large majority of Google jobs need <= 1 processor",
            "mem": "Google jobs' memory stays small versus Grid jobs",
        },
        notes=(
            "Google CDFs dominate at low usage on both axes, matching the "
            "figure: interactive Cloud jobs demand far fewer resources."
        ),
    )
