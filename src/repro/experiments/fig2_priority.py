"""Fig. 2 — number of jobs and tasks per priority (1..12).

The paper's histogram clusters into three bands: low (1-4) holds the
bulk of jobs, middle (5-8) a moderate share led by priority 6, and a
visible spike of high-priority (9) production services.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ecdf import histogram_counts
from ..traces.schema import priority_band_array
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    sharded_google_jobs,
    sharded_map_reduce,
    workload_dataset,
)

__all__ = ["run"]

#: The figure's x-axis: Google priorities 1..12.
_PRIORITIES = np.arange(1, 13)


@dataclass
class _PriorityCounts:
    """Mergeable Fig. 2 state: pure integer counts, exact under sums."""

    job_counts: np.ndarray  # int64 per priority 1..12
    task_counts: np.ndarray  # int64 per priority 1..12
    band_counts: np.ndarray  # int64 per band (low, middle, high)
    total_jobs: int
    total_tasks: int

    def merge(self, other: "_PriorityCounts") -> "_PriorityCounts":
        self.job_counts = self.job_counts + other.job_counts
        self.task_counts = self.task_counts + other.task_counts
        self.band_counts = self.band_counts + other.band_counts
        self.total_jobs += other.total_jobs
        self.total_tasks += other.total_tasks
        return self


def _count_shard(priorities: np.ndarray, num_tasks: np.ndarray) -> _PriorityCounts:
    """Fig. 2 counts of one row chunk (the whole table, or one shard)."""
    job_counts = histogram_counts(priorities, _PRIORITIES)
    # Task counts weight each job by its task fan-out.
    task_counts = np.array(
        [int(num_tasks[priorities == p].sum()) for p in _PRIORITIES],
        dtype=np.int64,
    )
    bands = priority_band_array(priorities)
    band_counts = np.array(
        [int(np.count_nonzero(bands == b)) for b in (0, 1, 2)], dtype=np.int64
    )
    return _PriorityCounts(
        job_counts=job_counts,
        task_counts=task_counts,
        band_counts=band_counts,
        total_jobs=int(priorities.size),
        total_tasks=int(num_tasks.sum()),
    )


def _collect_priorities(shard) -> _PriorityCounts:
    """Map kernel: one shard's priority/task histogram."""
    return _count_shard(
        np.asarray(shard["priority"]), np.asarray(shard["num_tasks"])
    )


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    backend = active_backend()
    if backend.name == "sharded":
        # Integer count sums merge exactly in any grouping, so the
        # streamed histogram is byte-identical to the in-memory one.
        counts = sharded_map_reduce(
            sharded_google_jobs(scale, seed, backend.shard_rows),
            _collect_priorities,
        )
    else:
        jobs = workload_dataset(scale, seed).google_jobs
        counts = _count_shard(
            np.asarray(jobs["priority"]), np.asarray(jobs["num_tasks"])
        )
    job_counts = counts.job_counts
    band_fracs = {
        "low(1-4)": float(int(counts.band_counts[0]) / counts.total_jobs),
        "middle(5-8)": float(int(counts.band_counts[1]) / counts.total_jobs),
        "high(9-12)": float(int(counts.band_counts[2]) / counts.total_jobs),
    }

    rows = [
        (int(p), int(jc), int(tc))
        for p, jc, tc in zip(_PRIORITIES, job_counts, counts.task_counts)
    ]
    return ExperimentResult(
        experiment_id="fig2",
        title="Jobs and tasks per priority",
        tables=(
            ResultTable.build(
                "Fig. 2: counts per priority",
                ("priority", "num_jobs", "num_tasks"),
                rows,
            ),
        ),
        metrics={
            "total_jobs": counts.total_jobs,
            "total_tasks": counts.total_tasks,
            **{f"job_frac_{k}": round(v, 3) for k, v in band_fracs.items()},
            "modal_priority": int(_PRIORITIES[np.argmax(job_counts)]),
        },
        paper_reference={
            "total_jobs": "~670,000",
            "total_tasks": ">25 million",
            "labeled_bars_x1e4": "p1=16, p2=11.3, p3=17, p4=13, p5=0.9, p6=4, p9=4.7",
            "finding": "most jobs/tasks sit at low priorities (1-5)",
        },
        notes=(
            "Priorities cluster into low/middle/high exactly as the paper's "
            "three groups; counts scale with the generated horizon."
        ),
    )
