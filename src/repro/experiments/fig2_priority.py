"""Fig. 2 — number of jobs and tasks per priority (1..12).

The paper's histogram clusters into three bands: low (1-4) holds the
bulk of jobs, middle (5-8) a moderate share led by priority 6, and a
visible spike of high-priority (9) production services.
"""

from __future__ import annotations

import numpy as np

from ..core.ecdf import histogram_counts
from ..traces.schema import priority_band_array
from .base import ExperimentResult, ResultTable
from .datasets import workload_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    jobs = data.google_jobs
    priorities = np.arange(1, 13)

    job_counts = histogram_counts(np.asarray(jobs["priority"]), priorities)
    # Task counts weight each job by its task fan-out.
    task_counts = np.array(
        [
            int(jobs["num_tasks"][jobs["priority"] == p].sum())
            for p in priorities
        ],
        dtype=np.int64,
    )

    bands = priority_band_array(np.asarray(jobs["priority"]))
    band_fracs = {
        "low(1-4)": float(np.count_nonzero(bands == 0) / len(jobs)),
        "middle(5-8)": float(np.count_nonzero(bands == 1) / len(jobs)),
        "high(9-12)": float(np.count_nonzero(bands == 2) / len(jobs)),
    }

    rows = [
        (int(p), int(jc), int(tc))
        for p, jc, tc in zip(priorities, job_counts, task_counts)
    ]
    return ExperimentResult(
        experiment_id="fig2",
        title="Jobs and tasks per priority",
        tables=(
            ResultTable.build(
                "Fig. 2: counts per priority",
                ("priority", "num_jobs", "num_tasks"),
                rows,
            ),
        ),
        metrics={
            "total_jobs": int(len(jobs)),
            "total_tasks": int(jobs["num_tasks"].sum()),
            **{f"job_frac_{k}": round(v, 3) for k, v in band_fracs.items()},
            "modal_priority": int(priorities[np.argmax(job_counts)]),
        },
        paper_reference={
            "total_jobs": "~670,000",
            "total_tasks": ">25 million",
            "labeled_bars_x1e4": "p1=16, p2=11.3, p3=17, p4=13, p5=0.9, p6=4, p9=4.7",
            "finding": "most jobs/tasks sit at low priorities (1-5)",
        },
        notes=(
            "Priorities cluster into low/middle/high exactly as the paper's "
            "three groups; counts scale with the generated horizon."
        ),
    )
