"""Reproduction scorecard — Section VI's findings, verified.

Aggregates every experiment into the paper's concluding claim list and
marks each claim PASS/FAIL against the measured data. This is the
one-look answer to "does the reproduction hold?".
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import ExperimentResult, ResultTable

__all__ = ["run", "Claim"]


@dataclass(frozen=True)
class Claim:
    """One conclusion bullet: where it comes from and whether it holds."""

    claim: str
    source: str
    measured: object
    holds: bool


def _claims(results: dict[str, ExperimentResult]) -> list[Claim]:
    m = {k: r.metrics for k, r in results.items()}
    return [
        Claim(
            "55% of tasks finish within 10 minutes",
            "txt2",
            m["txt2"]["google_frac_under_10min"],
            abs(m["txt2"]["google_frac_under_10min"] - 0.55) < 0.07,
        ),
        Claim(
            "~90% of task lengths are shorter than 1 hour",
            "txt2",
            m["txt2"]["google_frac_under_1h"],
            abs(m["txt2"]["google_frac_under_1h"] - 0.90) < 0.05,
        ),
        Claim(
            "Cloud tasks mostly shorter, but longest Cloud tasks longer",
            "txt2",
            (
                m["txt2"]["cloud_tasks_mostly_shorter"],
                m["txt2"]["cloud_max_longer"],
            ),
            bool(
                m["txt2"]["cloud_tasks_mostly_shorter"]
                and m["txt2"]["cloud_max_longer"]
            ),
        ),
        Claim(
            "task-length disparity: Google ~6/94 vs AuverGrid ~24/76",
            "fig4",
            (
                m["fig4"]["google_joint_small_side"],
                m["fig4"]["auvergrid_joint_small_side"],
            ),
            bool(m["fig4"]["google_more_pareto"]),
        ),
        Claim(
            "priorities cluster into low/middle/high with low dominant",
            "fig2",
            m["fig2"]["job_frac_low(1-4)"],
            m["fig2"]["job_frac_low(1-4)"] > 0.6,
        ),
        Claim(
            "Google submits ~552 jobs/hour at fairness ~0.94",
            "tab1",
            (m["tab1"]["google_avg_per_hour"], m["tab1"]["google_fairness"]),
            bool(
                abs(m["tab1"]["google_avg_per_hour"] - 552) < 60
                and abs(m["tab1"]["google_fairness"] - 0.94) < 0.05
            ),
        ),
        Claim(
            "Google submission rate and stability exceed every Grid's",
            "tab1",
            (
                m["tab1"]["google_rate_highest"],
                m["tab1"]["google_fairness_highest"],
            ),
            bool(
                m["tab1"]["google_rate_highest"]
                and m["tab1"]["google_fairness_highest"]
            ),
        ),
        Claim(
            "Google jobs demand less CPU and memory than Grid jobs",
            "fig6",
            m["fig6"]["google_frac_under_1_cpu"],
            bool(m["fig6"]["google_lower_cpu"]),
        ),
        Claim(
            "max memory usage ~80% of capacity; assigned above consumed",
            "fig7",
            m["fig7"]["mem_mean_relative_max"],
            bool(
                m["fig7"]["assigned_exceeds_consumed"]
                and 0.6 < m["fig7"]["mem_mean_relative_max"] <= 1.0
            ),
        ),
        Claim(
            "CPU usage levels change faster than memory levels",
            "tab2+tab3",
            (
                m["tab2"]["cpu_weighted_avg_duration_min"],
                m["tab3"]["mem_weighted_avg_duration_min"],
            ),
            m["tab2"]["cpu_weighted_avg_duration_min"]
            < m["tab3"]["mem_weighted_avg_duration_min"],
        ),
        Claim(
            "CPUs often idle (~35%) while memory runs high (~60%)",
            "fig11/fig12",
            (
                m["fig11"]["mean_cpu_usage_pct"],
                m["fig12"]["mean_mem_usage_pct"],
            ),
            bool(m["fig12"]["mem_above_cpu"]),
        ),
        Claim(
            "~59% of completion events are abnormal (fail, then kill)",
            "txt1",
            m["txt1"]["abnormal_fraction"],
            bool(
                abs(m["txt1"]["abnormal_fraction"] - 0.592) < 0.08
                and m["txt1"]["fail_dominates_abnormal"]
            ),
        ),
        Claim(
            "Cloud CPU noise an order of magnitude above Grid's",
            "fig13",
            m["fig13"]["noise_ratio_google_over_auvergrid"],
            bool(m["fig13"]["google_noisier"]),
        ),
        Claim(
            "Cloud host load is harder to predict than Grid load",
            "ext2",
            m["ext2"]["cloud_over_grid_error_ratio"],
            bool(m["ext2"]["cloud_harder_to_predict"]),
        ),
    ]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    # Import here to avoid a registry <-> scorecard import cycle.
    from .registry import EXPERIMENTS

    results = {
        exp_id: fn(scale=scale, seed=seed)
        for exp_id, fn in EXPERIMENTS.items()
        if exp_id != "scorecard"
    }
    claims = _claims(results)
    rows = [
        (
            c.claim,
            c.source,
            str(c.measured),
            "PASS" if c.holds else "FAIL",
        )
        for c in claims
    ]
    passed = sum(c.holds for c in claims)
    return ExperimentResult(
        experiment_id="scorecard",
        title="Section VI findings, verified",
        tables=(
            ResultTable.build(
                "reproduction scorecard",
                ("claim", "source", "measured", "verdict"),
                rows,
            ),
        ),
        metrics={
            "claims_total": len(claims),
            "claims_passed": passed,
            "all_pass": passed == len(claims),
        },
        paper_reference={
            "source": "the bullet list of Sec. VI (Conclusion and Future Work)",
        },
        notes="Every conclusion bullet is re-derived from synthetic data.",
    )
