"""Table I — jobs submitted per hour: max / avg / min and fairness.

Paper row targets: Google 1421/552/36 at fairness 0.94; Grids average
8.4-126 jobs/hour with fairness 0.04-0.51 and minimum 0 (diurnal lulls).
"""

from __future__ import annotations

import numpy as np

from ..core.fairness import HourlyCountsAccumulator, submission_rate_stats
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    grid_system_names,
    sharded_google_jobs,
    sharded_map_reduce,
    workload_dataset,
)

__all__ = ["run", "PAPER_TABLE1"]


def _hourly_counts(shard, horizon: float) -> HourlyCountsAccumulator:
    """Map kernel: hourly submission bincount of one shard.

    Integer partial counts over a fixed horizon merge exactly under any
    sharding, so the finalized Table I row matches the in-memory
    :func:`submission_rate_stats` bit for bit.
    """
    acc = HourlyCountsAccumulator(horizon)
    acc.add(np.asarray(shard["submit_time"]))
    return acc

#: The paper's Table I, for side-by-side comparison.
PAPER_TABLE1: dict[str, tuple[float, float, float, float]] = {
    # system: (max, avg, min, fairness)
    "Google": (1421, 552, 36, 0.94),
    "AuverGrid": (818, 45, 0, 0.35),
    "NorduGrid": (2175, 27, 0, 0.11),
    "SHARCNET": (22334, 126, 0, 0.04),
    "ANL": (132, 10, 0, 0.51),
    "RICC": (4919, 121, 0, 0.14),
    "METACENTRUM": (2315, 24, 0, 0.04),
    "LLNL-Atlas": (240, 8.4, 0, 0.23),
}


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    systems = {"Google": data.google_jobs}
    systems.update({n: data.grid_jobs[n] for n in grid_system_names()})

    backend = active_backend()
    rows = []
    measured: dict[str, tuple[float, float, float, float]] = {}
    for name, jobs in systems.items():
        if name == "Google" and backend.name == "sharded":
            acc = sharded_map_reduce(
                sharded_google_jobs(scale, seed, backend.shard_rows),
                _hourly_counts,
                args=(data.horizon,),
            )
            stats = acc.finalize()
        else:
            stats = submission_rate_stats(
                np.asarray(jobs["submit_time"]), data.horizon
            )
        measured[name] = (
            stats.max_per_hour,
            stats.avg_per_hour,
            stats.min_per_hour,
            stats.fairness,
        )
        paper = PAPER_TABLE1.get(name)
        rows.append(
            (
                name,
                stats.max_per_hour,
                round(stats.avg_per_hour, 1),
                stats.min_per_hour,
                round(stats.fairness, 2),
                "/".join(str(v) for v in paper) if paper else "-",
            )
        )

    google = measured["Google"]
    grid_avg = [measured[n][1] for n in systems if n != "Google"]
    grid_fair = [measured[n][3] for n in systems if n != "Google"]
    return ExperimentResult(
        experiment_id="tab1",
        title="Jobs submitted per hour (Table I)",
        tables=(
            ResultTable.build(
                "Table I: submission-rate statistics",
                ("system", "max/h", "avg/h", "min/h", "fairness", "paper(max/avg/min/fair)"),
                rows,
            ),
        ),
        metrics={
            "google_avg_per_hour": round(google[1], 1),
            "google_fairness": round(google[3], 3),
            "google_rate_highest": google[1] > max(grid_avg),
            "google_fairness_highest": google[3] > max(grid_fair),
            "grid_fairness_range": (
                round(min(grid_fair), 3),
                round(max(grid_fair), 3),
            ),
        },
        paper_reference={
            "google": "552 avg/hour, fairness 0.94",
            "grids": "8.4-126 avg/hour, fairness 0.04-0.51",
        },
        notes=(
            "Google submits at a much higher and much more stable rate than "
            "any Grid system, matching Table I's ordering."
        ),
    )
