"""Fig. 10 — load-level snapshot of 50 machines: CPU vs memory, all vs
high-priority tasks.

Key shapes: CPUs are mostly in low usage levels outside the busy
days-21-25 stretch; memory sits in high levels throughout; restricting
to high-priority tasks drops the apparent load dramatically because
most usage comes from preemptible low-priority work.
"""

from __future__ import annotations

import numpy as np

from ..core.segments import usage_level_labels
from ..hostload.levels import level_snapshot
from ..hostload.priority import band_share
from .base import ExperimentResult, ResultTable
from .datasets import SCALES, simulation_dataset

__all__ = ["run"]

_PANELS = (
    ("cpu", "(a) CPU, all tasks"),
    ("cpu_high", "(b) CPU, high-priority tasks"),
    ("mem", "(c) MEM, all tasks"),
    ("mem_high", "(d) MEM, high-priority tasks"),
)


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    labels = usage_level_labels()

    rows = []
    occupancy: dict[str, np.ndarray] = {}
    for attribute, title in _PANELS:
        snap = level_snapshot(
            data.series, attribute=attribute, num_machines=50, seed=seed
        )
        occ = snap.level_occupancy()
        occupancy[attribute] = occ
        rows.append((title, *(round(float(v), 3) for v in occ)))

    shares = band_share(data.series, "cpu")

    metrics: dict[str, object] = {
        "cpu_low_levels_frac": round(
            float(occupancy["cpu"][:2].sum()), 3
        ),
        "mem_high_levels_frac": round(
            float(occupancy["mem"][2:].sum()), 3
        ),
        "high_priority_cpu_mostly_idle": float(
            occupancy["cpu_high"][0]
        )
        > 0.5,
        "cpu_share_low_band": round(shares["low"] / max(shares["total"], 1e-9), 3),
    }

    spec = SCALES[scale]
    if spec.busy_window is not None:
        cluster = data.result.cluster_series
        times = np.asarray(cluster["time"])
        start, end = spec.busy_window
        busy = (times >= start) & (times < end)
        calm = ~busy
        usage = data.result.machine_usage
        mu_times = np.asarray(usage["time"])
        mu_busy = (mu_times >= start) & (mu_times < end)
        cpu = np.asarray(usage["cpu_usage"])
        metrics["busy_window_cpu_uplift"] = round(
            float(cpu[mu_busy].mean() / max(cpu[~mu_busy].mean(), 1e-12)), 2
        )

    return ExperimentResult(
        experiment_id="fig10",
        title="Snapshot of resource-usage load levels",
        tables=(
            ResultTable.build(
                "Fig. 10: fraction of (machine, sample) cells per level",
                ("panel", *labels),
                rows,
            ),
        ),
        metrics=metrics,
        paper_reference={
            "cpu": "machines mostly idle except days 21-25",
            "mem": "majority of machines at high memory levels",
            "high_priority": (
                "load from high-priority tasks is light; most CPU is "
                "consumed by low-priority tasks"
            ),
        },
        notes=(
            "CPU occupies the low levels and memory the high levels; "
            "high-priority-only views are much lighter, matching Fig. 10."
        ),
    )
