"""Sec. IV.B.1 in-text statistic — the completion-event mix.

Of ~44M task-completion events, ~59.2% are abnormal; among the
abnormal ones, ~50% are failures and ~30.7% kills.
"""

from __future__ import annotations

from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    mix = data.result.completion_mix()
    counts = data.result.counts

    abnormal = max(mix["abnormal"], 1e-12)
    fail_share = mix["fail"] / abnormal
    kill_share = mix["kill"] / abnormal

    rows = [
        (name, counts[name], round(mix[name], 3))
        for name in ("finish", "fail", "kill", "evict", "lost")
    ]
    rows.append(("abnormal(total)", sum(counts[k] for k in ("fail", "kill", "evict", "lost")), round(mix["abnormal"], 3)))
    return ExperimentResult(
        experiment_id="txt1",
        title="Completion-event mix",
        tables=(
            ResultTable.build(
                "completion events by terminal type",
                ("event", "count", "fraction"),
                rows,
            ),
        ),
        metrics={
            "abnormal_fraction": round(mix["abnormal"], 3),
            "fail_share_of_abnormal": round(fail_share, 3),
            "kill_share_of_abnormal": round(kill_share, 3),
            "fail_dominates_abnormal": fail_share > kill_share
            and fail_share > mix["evict"] / abnormal,
        },
        paper_reference={
            "abnormal_fraction": 0.592,
            "fail_share_of_abnormal": 0.50,
            "kill_share_of_abnormal": 0.307,
        },
        notes=(
            "Most completions are abnormal, led by failures then kills; "
            "evictions add on top via preemption."
        ),
    )
