"""Common experiment-result container and rendering."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.report import render_kv, render_table

__all__ = ["ExperimentResult", "ResultTable"]


@dataclass(frozen=True)
class ResultTable:
    """One printable table of an experiment's output."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    @staticmethod
    def build(
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> "ResultTable":
        return ResultTable(
            title=title,
            headers=tuple(headers),
            rows=tuple(tuple(r) for r in rows),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``metrics`` holds the headline scalars compared against the paper;
    ``paper_reference`` records what the paper reported for the same
    quantity (textual, since we only match shape).
    """

    experiment_id: str
    title: str
    tables: tuple[ResultTable, ...] = ()
    metrics: dict[str, object] = field(default_factory=dict)
    paper_reference: dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Human-readable report block."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            parts.append(
                render_table(table.headers, table.rows, title=table.title)
            )
        if self.metrics:
            parts.append(render_kv(self.metrics, title="measured:"))
        if self.paper_reference:
            parts.append(render_kv(self.paper_reference, title="paper reports:"))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)
