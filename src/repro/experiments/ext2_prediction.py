"""Extension 2 — host-load predictability, Cloud vs Grid.

Executes the paper's announced future work: backtest standard
predictors on a simulated Google host and a synthetic Grid host. The
noise gap of Fig. 13 translates directly into a prediction-error gap.
"""

from __future__ import annotations

import numpy as np

from ..prediction import (
    EWMA,
    AutoRegressive,
    LastValue,
    MovingAverage,
    compare_predictors,
)
from ..synth.grid_hostload import generate_grid_host_series
from .base import ExperimentResult, ResultTable
from .datasets import SCALES, simulation_dataset

__all__ = ["run"]


def _predictors():
    return {
        "last_value": LastValue(),
        "moving_average_1h": MovingAverage(window=12),
        "ewma_0.3": EWMA(alpha=0.3),
        "ar4": AutoRegressive(order=4, train_window=288, refit_every=96),
    }


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    horizon = SCALES[scale].sim_horizon

    series = list(data.series.values())
    means = np.asarray([s.relative("cpu").mean() for s in series])
    cloud = series[int(np.argmax(means))].relative("cpu")
    _, grid, _ = generate_grid_host_series(horizon, seed + 200)

    # Cap the series length so the AR walk-forward stays fast.
    cloud = cloud[:2880]
    grid = grid[:2880]

    rows = []
    best: dict[str, float] = {}
    for name, load in (("Google", cloud), ("Grid", grid)):
        scores = compare_predictors(_predictors(), load)
        best[name] = scores[0].rmse
        for s in scores:
            rows.append((name, s.predictor, round(s.rmse, 5), round(s.mae, 5)))

    ratio = best["Google"] / max(best["Grid"], 1e-12)
    return ExperimentResult(
        experiment_id="ext2",
        title="Host-load predictability, Cloud vs Grid",
        tables=(
            ResultTable.build(
                "walk-forward one-step errors (5-minute horizon)",
                ("host", "predictor", "rmse", "mae"),
                rows,
            ),
        ),
        metrics={
            "best_cloud_rmse": round(best["Google"], 5),
            "best_grid_rmse": round(best["Grid"], 5),
            "cloud_over_grid_error_ratio": round(float(ratio), 1),
            "cloud_harder_to_predict": bool(ratio > 2),
        },
        paper_reference={
            "finding": (
                "it is more challenging to predict Google cluster's host "
                "load because of its higher noise and more unstable state "
                "(Sec. IV.B)"
            ),
        },
        notes="Every predictor does worse on the Cloud host.",
    )
