"""Fig. 8 — task events and queuing state on a particular host.

The paper's sample machine accumulates thousands of task executions
over the month; its running queue climbs to a stable plateau (~40),
the pending queue stays at zero past bootstrap, completed counts grow
linearly and a large share of completions are abnormal.
"""

from __future__ import annotations

import numpy as np

from ..hostload.queues import machine_queue_state, task_spans
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run", "busiest_machine"]


def busiest_machine(task_events) -> int:
    """Machine with the most events (the figure's 'particular host')."""
    machine = task_events["machine_id"]
    placed = machine[machine >= 0]
    if placed.size == 0:
        raise ValueError("no placed events in the log")
    values, counts = np.unique(placed, return_counts=True)
    return int(values[np.argmax(counts)])


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    events = data.result.task_events
    mid = busiest_machine(events)

    qs = machine_queue_state(events, mid)
    spans = task_spans(events, mid)
    horizon = data.result.horizon

    # Sample the running count hourly for a compact trajectory table.
    sample_times = np.linspace(0.0, horizon, 13)[1:]
    running = qs.sample(sample_times, "running")
    finished = qs.sample(sample_times, "finished")
    abnormal = qs.sample(sample_times, "abnormal")
    rows = [
        (round(t / 86400.0, 1), int(r), int(f), int(a))
        for t, r, f, a in zip(sample_times, running, finished, abnormal)
    ]

    cluster = data.result.cluster_series
    second_half = cluster.select(
        np.asarray(cluster["time"]) > 0.1 * horizon
    )
    pending_after_bootstrap = int(np.asarray(second_half["n_pending"]).max())
    steady = running[len(running) // 2 :]
    abnormal_frac = (
        float(abnormal[-1]) / float(finished[-1]) if finished[-1] else 0.0
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Task events and queue state on one host",
        tables=(
            ResultTable.build(
                f"Fig. 8(b): queue state of machine {mid} over time",
                ("day", "running", "finished", "abnormal"),
                rows,
            ),
        ),
        metrics={
            "machine_id": mid,
            "num_task_executions": int(len(spans)),
            "steady_running_mean": round(float(steady.mean()), 1),
            "steady_running_std": round(float(steady.std()), 1),
            "cluster_pending_after_bootstrap_max": pending_after_bootstrap,
            "final_abnormal_fraction": round(abnormal_frac, 3),
            "finished_grows_linearly": bool(
                np.all(np.diff(finished.astype(np.int64)) >= 0)
            ),
        },
        paper_reference={
            "running": "climbs to ~40 and stays stable",
            "pending": "~0 except during bootstrap",
            "abnormal": "~59.2% of the 44M completion events are abnormal",
        },
        notes=(
            "Running-queue plateau, empty pending queue and linear growth "
            "of (largely abnormal) completions match Fig. 8."
        ),
    )
