"""Standard synthetic datasets shared across experiments.

Three scales exist: ``small`` keeps unit/integration tests fast,
``medium`` sizes benchmark runs so vectorized-vs-scalar speedups are
measurable, and ``paper`` approximates the paper's month-long
measurement (scaled from 12,500 to 40 machines; per-machine dynamics
are what Figs. 7-13 measure, so the fleet size only affects
statistical smoothness).

Builders are memoized per (scale, seed) because the simulation dataset
takes tens of seconds at paper scale and every host-load experiment
consumes the same run. On top of the per-process memo sits an optional
content-addressed disk cache (:mod:`repro.core.diskcache`): builders
are pure functions of ``(scale, seed, config)`` — guaranteed by the
REP101/REP501 lint rules — so entries keyed by those inputs plus
:data:`DATASET_CACHE_VERSION` are always safe to reuse across
processes and invocations. Configure it with :func:`configure_cache`
(the CLI does this from ``--cache-dir``) or the ``REPRO_CACHE_DIR``
environment variable; it is off by default for library use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.diskcache import MISS, DiskCache, cache_key, fingerprint
from ..hostload.series import MachineLoadSeries, all_machine_series
from ..sim.cluster import ClusterSimulator, SimConfig, SimResult
from ..synth.google_model import (
    GoogleConfig,
    TaskRequests,
    generate_google_jobs,
    generate_task_requests,
)
from ..synth.grid_model import generate_all_grids
from ..synth.machines import generate_machines
from ..synth.presets import DAY, GRID_PRESETS
from ..traces.convert import grid_jobs_to_job_table
from ..core.table import Table

__all__ = [
    "DATASET_CACHE_VERSION",
    "SCALES",
    "ScaleSpec",
    "WorkloadDataset",
    "SimulationDataset",
    "configure_cache",
    "dataset_cache",
    "dataset_stats",
    "default_cache_dir",
    "reset_dataset_stats",
    "workload_dataset",
    "simulation_dataset",
    "sim_google_config",
]

#: Bump when a builder, model default, or cached container changes in a
#: way that alters dataset contents; old disk-cache entries then miss.
DATASET_CACHE_VERSION = 1


@dataclass(frozen=True)
class ScaleSpec:
    """Sizing of one dataset scale."""

    name: str
    workload_horizon: float
    sim_horizon: float
    num_machines: int
    tasks_per_hour_per_machine: float
    busy_window: tuple[float, float] | None
    busy_factor: float
    task_sample_size: int


SCALES: dict[str, ScaleSpec] = {
    "small": ScaleSpec(
        name="small",
        workload_horizon=4 * DAY,
        sim_horizon=2 * DAY,
        num_machines=16,
        tasks_per_hour_per_machine=14.0,
        busy_window=None,
        busy_factor=1.0,
        task_sample_size=40_000,
    ),
    "medium": ScaleSpec(
        name="medium",
        workload_horizon=10 * DAY,
        sim_horizon=6 * DAY,
        num_machines=32,
        tasks_per_hour_per_machine=12.0,
        busy_window=None,
        busy_factor=1.0,
        task_sample_size=100_000,
    ),
    "paper": ScaleSpec(
        name="paper",
        workload_horizon=30 * DAY,
        sim_horizon=30 * DAY,
        num_machines=40,
        tasks_per_hour_per_machine=9.0,
        busy_window=(21 * DAY, 25 * DAY),
        busy_factor=1.4,
        task_sample_size=250_000,
    ),
}


def _scale(name: str) -> ScaleSpec:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None


def sim_google_config(spec: ScaleSpec) -> GoogleConfig:
    """Google model configured for simulation runs at this scale.

    The simulated fleet runs CPUs at a lower utilization fraction so the
    cluster-wide relative CPU load lands near the paper's ~35% while
    memory stays near ~60-70%.
    """
    return GoogleConfig(
        busy_window=spec.busy_window,
        busy_factor=spec.busy_factor,
        cpu_utilization_range=(0.25, 0.7),
    )


@dataclass(frozen=True)
class WorkloadDataset:
    """Per-job tables for every system plus Google task-level samples."""

    horizon: float
    google_jobs: Table
    grid_jobs_native: dict[str, Table]  # GWA/SWF schemas
    grid_jobs: dict[str, Table]  # converted to the common schema
    google_tasks: TaskRequests  # task-level sample (lengths, priorities)


@dataclass(frozen=True)
class SimulationDataset:
    """One simulated cluster month plus its per-machine series."""

    result: SimResult
    series: dict[int, MachineLoadSeries]
    config: GoogleConfig


# -- disk cache wiring --------------------------------------------------------

#: (disk cache instance or None, whether configure_cache was called).
_CACHE: DiskCache | None = None
_CACHE_CONFIGURED = False

#: Build/disk-traffic counters, readable via :func:`dataset_stats`.
_STATS = {
    "workload_builds": 0,
    "simulation_builds": 0,
    "disk_hits": 0,
    "disk_misses": 0,
}


def default_cache_dir() -> Path:
    """Default on-disk cache location (XDG-style, overridable by env)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "datasets"


def configure_cache(
    cache_dir: str | Path | None,
    *,
    max_bytes: int | None = 4 * 1024**3,
    max_entries: int | None = 64,
) -> DiskCache | None:
    """Point the dataset builders at an on-disk cache (None disables).

    Also clears the in-process memo so the new cache takes effect for
    subsequent calls.
    """
    global _CACHE, _CACHE_CONFIGURED
    _CACHE_CONFIGURED = True
    _CACHE = (
        None
        if cache_dir is None
        else DiskCache(cache_dir, max_bytes=max_bytes, max_entries=max_entries)
    )
    workload_dataset.cache_clear()
    simulation_dataset.cache_clear()
    return _CACHE


def dataset_cache() -> DiskCache | None:
    """The active disk cache, honouring ``REPRO_CACHE_DIR`` by default."""
    global _CACHE, _CACHE_CONFIGURED
    if not _CACHE_CONFIGURED:
        _CACHE_CONFIGURED = True
        env = os.environ.get("REPRO_CACHE_DIR")
        _CACHE = DiskCache(env) if env else None
    return _CACHE


def dataset_stats() -> dict[str, int]:
    """Build and disk-cache traffic counters for this process."""
    stats = dict(_STATS)
    cache = _CACHE
    if cache is not None:
        for name, value in cache.stats.as_dict().items():
            stats[f"cache_{name}"] = value
    return stats


def reset_dataset_stats() -> None:
    """Zero the counters (tests and fresh CLI runs)."""
    for name in _STATS:
        _STATS[name] = 0
    cache = _CACHE
    if cache is not None:
        cache.stats.__init__()


def _cached_build(kind: str, key_parts: dict[str, object], build):
    """Disk-cache lookup around a pure dataset builder."""
    cache = dataset_cache()
    key = None
    if cache is not None:
        key = cache_key(
            kind=kind,
            version=DATASET_CACHE_VERSION,
            repro=__version__,
            **key_parts,
        )
        obj = cache.get(key)
        if obj is not MISS:
            _STATS["disk_hits"] += 1
            return obj
        _STATS["disk_misses"] += 1
    obj = build()
    _STATS[f"{kind}_builds"] += 1
    if cache is not None and key is not None:
        cache.put(key, obj)
    return obj


@lru_cache(maxsize=4)
def workload_dataset(scale: str = "paper", seed: int = 0) -> WorkloadDataset:
    """Job tables for Google + all eight Grid/HPC systems."""
    spec = _scale(scale)
    config = GoogleConfig(
        busy_window=spec.busy_window, busy_factor=spec.busy_factor
    )
    return _cached_build(
        "workload",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "grids": fingerprint(GRID_PRESETS),
        },
        lambda: _build_workload(spec, seed, config),
    )


def _build_workload(
    spec: ScaleSpec, seed: int, config: GoogleConfig
) -> WorkloadDataset:
    horizon = spec.workload_horizon
    # Tie the busy window to the scale so the fairness calibration's
    # variance budget matches what the horizon actually contains.
    google_jobs = generate_google_jobs(horizon, seed=seed, config=config)
    native = generate_all_grids(horizon, seed=seed + 1)
    converted = {
        name: grid_jobs_to_job_table(table) for name, table in native.items()
    }
    # Task-level sample: a short dense stream gives i.i.d. draws from
    # the calibrated per-priority task-length model.
    rate = spec.task_sample_size / (2 * DAY / 3600.0)
    tasks = generate_task_requests(
        2 * DAY,
        seed=seed + 2,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=rate,
    )
    return WorkloadDataset(
        horizon=horizon,
        google_jobs=google_jobs,
        grid_jobs_native=native,
        grid_jobs=converted,
        google_tasks=tasks,
    )


@lru_cache(maxsize=4)
def simulation_dataset(scale: str = "paper", seed: int = 0) -> SimulationDataset:
    """Simulated cluster run at the requested scale (memoized)."""
    spec = _scale(scale)
    config = sim_google_config(spec)
    return _cached_build(
        "simulation",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "sim": fingerprint(SimConfig()),
        },
        lambda: _build_simulation(spec, seed, config),
    )


def _build_simulation(
    spec: ScaleSpec, seed: int, config: GoogleConfig
) -> SimulationDataset:
    rng = np.random.default_rng(seed + 10)
    machines = generate_machines(spec.num_machines, rng)
    requests = generate_task_requests(
        spec.sim_horizon,
        seed=seed + 11,
        config=config,
        tasks_per_hour=spec.tasks_per_hour_per_machine * spec.num_machines,
    )
    sim = ClusterSimulator(machines, SimConfig(), seed=seed + 12)
    result = sim.run(requests, spec.sim_horizon)
    series = all_machine_series(result.machine_usage, result.machines)
    return SimulationDataset(result=result, series=series, config=config)


def grid_system_names() -> list[str]:
    """Names of the calibrated Grid/HPC systems, Table I order first."""
    order = [
        "AuverGrid",
        "NorduGrid",
        "SHARCNET",
        "ANL",
        "RICC",
        "METACENTRUM",
        "LLNL-Atlas",
        "DAS-2",
    ]
    return [n for n in order if n in GRID_PRESETS]
