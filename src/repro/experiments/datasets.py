"""Standard synthetic datasets shared across experiments.

Two scales exist: ``small`` keeps unit/integration tests fast, while
``paper`` approximates the paper's month-long measurement (scaled from
12,500 to 40 machines; per-machine dynamics are what Figs. 7-13
measure, so the fleet size only affects statistical smoothness).

Builders are memoized per (scale, seed) because the simulation dataset
takes tens of seconds at paper scale and every host-load experiment
consumes the same run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..hostload.series import MachineLoadSeries, all_machine_series
from ..sim.cluster import ClusterSimulator, SimConfig, SimResult
from ..synth.google_model import (
    GoogleConfig,
    TaskRequests,
    generate_google_jobs,
    generate_task_requests,
)
from ..synth.grid_model import generate_all_grids
from ..synth.machines import generate_machines
from ..synth.presets import DAY, GRID_PRESETS
from ..traces.convert import grid_jobs_to_job_table
from ..traces.table import Table

__all__ = [
    "SCALES",
    "ScaleSpec",
    "WorkloadDataset",
    "SimulationDataset",
    "workload_dataset",
    "simulation_dataset",
    "sim_google_config",
]


@dataclass(frozen=True)
class ScaleSpec:
    """Sizing of one dataset scale."""

    name: str
    workload_horizon: float
    sim_horizon: float
    num_machines: int
    tasks_per_hour_per_machine: float
    busy_window: tuple[float, float] | None
    busy_factor: float
    task_sample_size: int


SCALES: dict[str, ScaleSpec] = {
    "small": ScaleSpec(
        name="small",
        workload_horizon=4 * DAY,
        sim_horizon=2 * DAY,
        num_machines=16,
        tasks_per_hour_per_machine=14.0,
        busy_window=None,
        busy_factor=1.0,
        task_sample_size=40_000,
    ),
    "paper": ScaleSpec(
        name="paper",
        workload_horizon=30 * DAY,
        sim_horizon=30 * DAY,
        num_machines=40,
        tasks_per_hour_per_machine=9.0,
        busy_window=(21 * DAY, 25 * DAY),
        busy_factor=1.4,
        task_sample_size=250_000,
    ),
}


def _scale(name: str) -> ScaleSpec:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None


def sim_google_config(spec: ScaleSpec) -> GoogleConfig:
    """Google model configured for simulation runs at this scale.

    The simulated fleet runs CPUs at a lower utilization fraction so the
    cluster-wide relative CPU load lands near the paper's ~35% while
    memory stays near ~60-70%.
    """
    return GoogleConfig(
        busy_window=spec.busy_window,
        busy_factor=spec.busy_factor,
        cpu_utilization_range=(0.25, 0.7),
    )


@dataclass(frozen=True)
class WorkloadDataset:
    """Per-job tables for every system plus Google task-level samples."""

    horizon: float
    google_jobs: Table
    grid_jobs_native: dict[str, Table]  # GWA/SWF schemas
    grid_jobs: dict[str, Table]  # converted to the common schema
    google_tasks: TaskRequests  # task-level sample (lengths, priorities)


@dataclass(frozen=True)
class SimulationDataset:
    """One simulated cluster month plus its per-machine series."""

    result: SimResult
    series: dict[int, MachineLoadSeries]
    config: GoogleConfig


@lru_cache(maxsize=4)
def workload_dataset(scale: str = "paper", seed: int = 0) -> WorkloadDataset:
    """Job tables for Google + all eight Grid/HPC systems."""
    spec = _scale(scale)
    horizon = spec.workload_horizon
    # Tie the busy window to the scale so the fairness calibration's
    # variance budget matches what the horizon actually contains.
    google_jobs = generate_google_jobs(
        horizon,
        seed=seed,
        config=GoogleConfig(
            busy_window=spec.busy_window, busy_factor=spec.busy_factor
        ),
    )
    native = generate_all_grids(horizon, seed=seed + 1)
    converted = {
        name: grid_jobs_to_job_table(table) for name, table in native.items()
    }
    # Task-level sample: a short dense stream gives i.i.d. draws from
    # the calibrated per-priority task-length model.
    rate = spec.task_sample_size / (2 * DAY / 3600.0)
    tasks = generate_task_requests(
        2 * DAY,
        seed=seed + 2,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=rate,
    )
    return WorkloadDataset(
        horizon=horizon,
        google_jobs=google_jobs,
        grid_jobs_native=native,
        grid_jobs=converted,
        google_tasks=tasks,
    )


@lru_cache(maxsize=4)
def simulation_dataset(scale: str = "paper", seed: int = 0) -> SimulationDataset:
    """Simulated cluster run at the requested scale (memoized)."""
    spec = _scale(scale)
    rng = np.random.default_rng(seed + 10)
    machines = generate_machines(spec.num_machines, rng)
    config = sim_google_config(spec)
    requests = generate_task_requests(
        spec.sim_horizon,
        seed=seed + 11,
        config=config,
        tasks_per_hour=spec.tasks_per_hour_per_machine * spec.num_machines,
    )
    sim = ClusterSimulator(machines, SimConfig(), seed=seed + 12)
    result = sim.run(requests, spec.sim_horizon)
    series = all_machine_series(result.machine_usage, result.machines)
    return SimulationDataset(result=result, series=series, config=config)


def grid_system_names() -> list[str]:
    """Names of the calibrated Grid/HPC systems, Table I order first."""
    order = [
        "AuverGrid",
        "NorduGrid",
        "SHARCNET",
        "ANL",
        "RICC",
        "METACENTRUM",
        "LLNL-Atlas",
        "DAS-2",
    ]
    return [n for n in order if n in GRID_PRESETS]
