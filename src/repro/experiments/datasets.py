"""Standard synthetic datasets shared across experiments.

Three scales exist: ``small`` keeps unit/integration tests fast,
``medium`` sizes benchmark runs so vectorized-vs-scalar speedups are
measurable, and ``paper`` approximates the paper's month-long
measurement (scaled from 12,500 to 40 machines; per-machine dynamics
are what Figs. 7-13 measure, so the fleet size only affects
statistical smoothness).

Builders are memoized per (scale, seed) because the simulation dataset
takes tens of seconds at paper scale and every host-load experiment
consumes the same run. On top of the per-process memo sits an optional
content-addressed disk cache (:mod:`repro.core.diskcache`): builders
are pure functions of ``(scale, seed, config)`` — guaranteed by the
REP101/REP501 lint rules — so entries keyed by those inputs plus
:data:`DATASET_CACHE_VERSION` are always safe to reuse across
processes and invocations. Configure it with :func:`configure_cache`
(the CLI does this from ``--cache-dir``) or the ``REPRO_CACHE_DIR``
environment variable; it is off by default for library use.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.diskcache import MISS, DiskCache, cache_key, fingerprint
from ..core.mapreduce import MapReduceConfig, map_reduce, map_shards, merge_accumulators
from ..core.shard import ShardIntegrityError, ShardWriter, ShardedTable
from ..core.table import Table
from ..hostload.series import MachineLoadSeries, all_machine_series
from ..sim.cluster import ClusterSimulator, SimConfig, SimResult
from ..synth.google_model import (
    GoogleConfig,
    TaskRequests,
    generate_google_jobs,
    generate_task_requests,
)
from ..synth.grid_model import generate_all_grids
from ..synth.machines import generate_machines
from ..synth.presets import DAY, GRID_PRESETS
from ..traces.convert import grid_jobs_to_job_table

__all__ = [
    "DATASET_CACHE_VERSION",
    "SCALES",
    "BackendSpec",
    "ScaleSpec",
    "WorkloadDataset",
    "SimulationDataset",
    "active_backend",
    "configure_backend",
    "configure_cache",
    "dataset_cache",
    "dataset_stats",
    "default_cache_dir",
    "heal_sharded_table",
    "open_sharded",
    "reset_dataset_stats",
    "sharded_google_jobs",
    "sharded_machine_usage",
    "sharded_map_reduce",
    "sharded_map_shards",
    "sharded_task_durations",
    "workload_dataset",
    "simulation_dataset",
    "sim_google_config",
]

#: Bump when a builder, model default, or cached container changes in a
#: way that alters dataset contents; old disk-cache entries then miss.
DATASET_CACHE_VERSION = 1


@dataclass(frozen=True)
class ScaleSpec:
    """Sizing of one dataset scale."""

    name: str
    workload_horizon: float
    sim_horizon: float
    num_machines: int
    tasks_per_hour_per_machine: float
    busy_window: tuple[float, float] | None
    busy_factor: float
    task_sample_size: int


SCALES: dict[str, ScaleSpec] = {
    "small": ScaleSpec(
        name="small",
        workload_horizon=4 * DAY,
        sim_horizon=2 * DAY,
        num_machines=16,
        tasks_per_hour_per_machine=14.0,
        busy_window=None,
        busy_factor=1.0,
        task_sample_size=40_000,
    ),
    "medium": ScaleSpec(
        name="medium",
        workload_horizon=10 * DAY,
        sim_horizon=6 * DAY,
        num_machines=32,
        tasks_per_hour_per_machine=12.0,
        busy_window=None,
        busy_factor=1.0,
        task_sample_size=100_000,
    ),
    "paper": ScaleSpec(
        name="paper",
        workload_horizon=30 * DAY,
        sim_horizon=30 * DAY,
        num_machines=40,
        tasks_per_hour_per_machine=9.0,
        busy_window=(21 * DAY, 25 * DAY),
        busy_factor=1.4,
        task_sample_size=250_000,
    ),
}


def _scale(name: str) -> ScaleSpec:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None


def sim_google_config(spec: ScaleSpec) -> GoogleConfig:
    """Google model configured for simulation runs at this scale.

    The simulated fleet runs CPUs at a lower utilization fraction so the
    cluster-wide relative CPU load lands near the paper's ~35% while
    memory stays near ~60-70%.
    """
    return GoogleConfig(
        busy_window=spec.busy_window,
        busy_factor=spec.busy_factor,
        cpu_utilization_range=(0.25, 0.7),
    )


@dataclass(frozen=True)
class WorkloadDataset:
    """Per-job tables for every system plus Google task-level samples."""

    horizon: float
    google_jobs: Table
    grid_jobs_native: dict[str, Table]  # GWA/SWF schemas
    grid_jobs: dict[str, Table]  # converted to the common schema
    google_tasks: TaskRequests  # task-level sample (lengths, priorities)


@dataclass(frozen=True)
class SimulationDataset:
    """One simulated cluster month plus its per-machine series."""

    result: SimResult
    series: dict[int, MachineLoadSeries]
    config: GoogleConfig


# -- disk cache wiring --------------------------------------------------------

#: (disk cache instance or None, whether configure_cache was called).
_CACHE: DiskCache | None = None
_CACHE_CONFIGURED = False

#: Build/disk-traffic counters, readable via :func:`dataset_stats`.
#: The out-of-core recovery keys mirror :data:`repro.core.timing
#: .RECOVERY_COUNTERS` so the runner's before/after stats delta lands
#: them on the ``recovery:`` footer and in ``--json``.
_STATS = {
    "workload_builds": 0,
    "simulation_builds": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "shard_spills": 0,
    "shards_quarantined": 0,
    "shards_rederived": 0,
    "spills_resumed": 0,
    "spill_shards_reused": 0,
    "mapreduce_retries": 0,
    "mapreduce_respawns": 0,
    "mapreduce_crashes": 0,
    "mapreduce_block_timeouts": 0,
    "mapreduce_stragglers": 0,
    "mapreduce_inline": 0,
}


class _StatsCounter:
    """Timings-compatible counter sink writing into :data:`_STATS`."""

    __slots__ = ()

    def count(self, name: str, n: int = 1) -> None:
        _STATS[name] = _STATS.get(name, 0) + n


def default_cache_dir() -> Path:
    """Default on-disk cache location (XDG-style, overridable by env)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "datasets"


def configure_cache(
    cache_dir: str | Path | None,
    *,
    max_bytes: int | None = 4 * 1024**3,
    max_entries: int | None = 64,
) -> DiskCache | None:
    """Point the dataset builders at an on-disk cache (None disables).

    Also clears the in-process memo so the new cache takes effect for
    subsequent calls.
    """
    global _CACHE, _CACHE_CONFIGURED
    _CACHE_CONFIGURED = True
    _CACHE = (
        None
        if cache_dir is None
        else DiskCache(cache_dir, max_bytes=max_bytes, max_entries=max_entries)
    )
    workload_dataset.cache_clear()
    simulation_dataset.cache_clear()
    sharded_google_jobs.cache_clear()
    sharded_task_durations.cache_clear()
    sharded_machine_usage.cache_clear()
    return _CACHE


def dataset_cache() -> DiskCache | None:
    """The active disk cache, honouring ``REPRO_CACHE_DIR`` by default."""
    global _CACHE, _CACHE_CONFIGURED
    if not _CACHE_CONFIGURED:
        _CACHE_CONFIGURED = True
        env = os.environ.get("REPRO_CACHE_DIR")
        _CACHE = DiskCache(env) if env else None
    return _CACHE


def dataset_stats() -> dict[str, int]:
    """Build and disk-cache traffic counters for this process."""
    stats = dict(_STATS)
    cache = _CACHE
    if cache is not None:
        for name, value in cache.stats.as_dict().items():
            stats[f"cache_{name}"] = value
    return stats


def reset_dataset_stats() -> None:
    """Zero the counters (tests and fresh CLI runs)."""
    for name in _STATS:
        _STATS[name] = 0
    cache = _CACHE
    if cache is not None:
        cache.stats.__init__()


def _cached_build(kind: str, key_parts: dict[str, object], build):
    """Disk-cache lookup around a pure dataset builder."""
    cache = dataset_cache()
    key = None
    if cache is not None:
        key = cache_key(
            kind=kind,
            version=DATASET_CACHE_VERSION,
            repro=__version__,
            **key_parts,
        )
        obj = cache.get(key)
        if obj is not MISS:
            _STATS["disk_hits"] += 1
            return obj
        _STATS["disk_misses"] += 1
    obj = build()
    _STATS[f"{kind}_builds"] += 1
    if cache is not None and key is not None:
        cache.put(key, obj)
    return obj


@lru_cache(maxsize=4)
def workload_dataset(scale: str = "paper", seed: int = 0) -> WorkloadDataset:
    """Job tables for Google + all eight Grid/HPC systems."""
    spec = _scale(scale)
    config = GoogleConfig(
        busy_window=spec.busy_window, busy_factor=spec.busy_factor
    )
    return _cached_build(
        "workload",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "grids": fingerprint(GRID_PRESETS),
        },
        lambda: _build_workload(spec, seed, config),
    )


def _build_workload(
    spec: ScaleSpec, seed: int, config: GoogleConfig
) -> WorkloadDataset:
    horizon = spec.workload_horizon
    # Tie the busy window to the scale so the fairness calibration's
    # variance budget matches what the horizon actually contains.
    google_jobs = generate_google_jobs(horizon, seed=seed, config=config)
    native = generate_all_grids(horizon, seed=seed + 1)
    converted = {
        name: grid_jobs_to_job_table(table) for name, table in native.items()
    }
    # Task-level sample: a short dense stream gives i.i.d. draws from
    # the calibrated per-priority task-length model.
    rate = spec.task_sample_size / (2 * DAY / 3600.0)
    tasks = generate_task_requests(
        2 * DAY,
        seed=seed + 2,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=rate,
    )
    return WorkloadDataset(
        horizon=horizon,
        google_jobs=google_jobs,
        grid_jobs_native=native,
        grid_jobs=converted,
        google_tasks=tasks,
    )


@lru_cache(maxsize=4)
def simulation_dataset(scale: str = "paper", seed: int = 0) -> SimulationDataset:
    """Simulated cluster run at the requested scale (memoized)."""
    spec = _scale(scale)
    config = sim_google_config(spec)
    return _cached_build(
        "simulation",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "sim": fingerprint(SimConfig()),
        },
        lambda: _build_simulation(spec, seed, config),
    )


def _build_simulation(
    spec: ScaleSpec, seed: int, config: GoogleConfig
) -> SimulationDataset:
    rng = np.random.default_rng(seed + 10)
    machines = generate_machines(spec.num_machines, rng)
    requests = generate_task_requests(
        spec.sim_horizon,
        seed=seed + 11,
        config=config,
        tasks_per_hour=spec.tasks_per_hour_per_machine * spec.num_machines,
    )
    sim = ClusterSimulator(machines, SimConfig(), seed=seed + 12)
    result = sim.run(requests, spec.sim_horizon)
    series = all_machine_series(result.machine_usage, result.machines)
    return SimulationDataset(result=result, series=series, config=config)


# -- out-of-core backend ------------------------------------------------------


@dataclass(frozen=True)
class BackendSpec:
    """How experiments materialize their large tables.

    ``memory`` (the default) keeps every dataset as in-process arrays;
    ``sharded`` spills the large Google-side tables to
    :class:`repro.core.shard.ShardedTable` directories and streams the
    characterization kernels over them — optionally fanned out across a
    spawn-based worker pool (``jobs``). Results are byte-identical to
    the in-memory backend (the experiments use only exactly-mergeable
    accumulators); only peak memory and wall-clock change.
    """

    name: str = "memory"
    shard_rows: int = 1_000_000
    jobs: int = 1
    #: Per-block wall-clock budget in the supervised map-reduce pool
    #: (None disables) and extra attempts per transiently failed block.
    block_timeout: float | None = None
    block_retries: int = 2
    #: Shard digest verification: "none", "lazy" (first read), "full".
    verify: str = "lazy"

    def __post_init__(self) -> None:
        if self.name not in ("memory", "sharded"):
            raise ValueError(f"unknown backend {self.name!r}")
        if self.shard_rows <= 0:
            raise ValueError("shard_rows must be positive")
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.block_timeout is not None and self.block_timeout <= 0:
            raise ValueError("block_timeout must be positive")
        if self.block_retries < 0:
            raise ValueError("block_retries must be >= 0")
        if self.verify not in ("none", "lazy", "full"):
            raise ValueError(f"unknown verify mode {self.verify!r}")


#: (active backend or None, whether configure_backend was called).
_BACKEND: BackendSpec | None = None
_BACKEND_CONFIGURED = False


def configure_backend(spec: BackendSpec | None) -> BackendSpec:
    """Select the experiment backend (None restores the default).

    The choice is also exported via ``REPRO_BACKEND``/
    ``REPRO_SHARD_ROWS``/``REPRO_BACKEND_JOBS`` so supervisor workers
    started with the spawn method resolve the same backend; fork-based
    workers inherit the module state directly.
    """
    global _BACKEND, _BACKEND_CONFIGURED
    _BACKEND_CONFIGURED = True
    _BACKEND = spec if spec is not None else BackendSpec()
    os.environ["REPRO_BACKEND"] = _BACKEND.name
    os.environ["REPRO_SHARD_ROWS"] = str(_BACKEND.shard_rows)
    os.environ["REPRO_BACKEND_JOBS"] = str(_BACKEND.jobs)
    os.environ["REPRO_BLOCK_TIMEOUT"] = (
        "" if _BACKEND.block_timeout is None else str(_BACKEND.block_timeout)
    )
    os.environ["REPRO_BLOCK_RETRIES"] = str(_BACKEND.block_retries)
    os.environ["REPRO_VERIFY_SHARDS"] = _BACKEND.verify
    return _BACKEND


def active_backend() -> BackendSpec:
    """The configured backend, honouring ``REPRO_BACKEND`` by default."""
    global _BACKEND, _BACKEND_CONFIGURED
    if not _BACKEND_CONFIGURED:
        _BACKEND_CONFIGURED = True
        timeout = os.environ.get("REPRO_BLOCK_TIMEOUT", "")
        _BACKEND = BackendSpec(
            name=os.environ.get("REPRO_BACKEND", "memory"),
            shard_rows=int(os.environ.get("REPRO_SHARD_ROWS", "1000000")),
            jobs=int(os.environ.get("REPRO_BACKEND_JOBS", "1")),
            block_timeout=float(timeout) if timeout else None,
            block_retries=int(os.environ.get("REPRO_BLOCK_RETRIES", "2")),
            verify=os.environ.get("REPRO_VERIFY_SHARDS", "lazy"),
        )
    if _BACKEND is None:
        _BACKEND = BackendSpec()
    return _BACKEND


#: Process-local spill directories (used when no disk cache is active),
#: removed at interpreter exit.
_SPILL_TMPDIRS: list[str] = []


def _cleanup_spills() -> None:
    for path in _SPILL_TMPDIRS:
        shutil.rmtree(path, ignore_errors=True)


atexit.register(_cleanup_spills)


@dataclass(frozen=True)
class _ShardSource:
    """How to re-derive one sharded table if its bytes go bad."""

    kind: str
    key: str | None  # disk-cache key, None for tmp spills
    rebuild: object  # () -> fresh root path string


#: Root path string -> recipe to quarantine-and-rebuild that table.
#: Every path handed out by :func:`_sharded_build` is registered here,
#: which is what lets :func:`heal_sharded_table` treat shard corruption
#: like any other cache corruption: park the bytes, rebuild from the
#: (pure, memoized) upstream builder, hand back a good root.
_SHARD_SOURCES: dict[str, _ShardSource] = {}


def _spill_hook(kind: str):
    """Torn-spill fault hook for this table kind, if a plan schedules one."""
    from . import faults  # lazy: faults imports this module at top level

    plan = faults.plan_from_env()
    if plan is None:
        return None
    return faults.spill_fault_hook(plan, kind)


def _spill(
    table: Table,
    dest: Path,
    shard_rows: int,
    group_by: str | None,
    kind: str,
    *,
    resume: bool,
) -> None:
    """Write one sharded table, resuming a prior interrupted spill.

    With ``resume`` the writer adopts the journaled prefix of a crashed
    spill at the same destination (dropping any torn trailing shard) and
    skips the rows it already holds, so a killed-and-retried spill
    produces bytes identical to an uninterrupted one.
    """
    schema = {name: table[name].dtype for name in table.column_names}
    writer = ShardWriter(
        dest,
        schema,
        shard_rows,
        group_by=group_by,
        resume=resume,
        on_event=_spill_hook(kind),
    )
    try:
        writer.append(table)
    except BaseException:
        writer.abort()
        raise
    writer.close()
    _STATS["shard_spills"] += 1
    if writer.resumed_shards:
        _STATS["spills_resumed"] += 1
        _STATS["spill_shards_reused"] += writer.resumed_shards


def _tmp_spill(
    table: Table, shard_rows: int, group_by: str | None, kind: str
) -> str:
    tmp = tempfile.mkdtemp(prefix="repro-spill-")
    _SPILL_TMPDIRS.append(tmp)
    dest = Path(tmp) / "shards"
    # A random tmp dir cannot be found again after a crash, so there is
    # nothing to resume.
    _spill(table, dest, shard_rows, group_by, kind, resume=False)
    return str(dest)


def _sharded_build(
    kind: str,
    key_parts: dict[str, object],
    build_table,
    shard_rows: int,
    group_by: str | None = None,
) -> str:
    """Spill a pure table builder to a sharded directory, via the cache.

    Returns the shard-table root as a path string (cheap to pickle into
    kernels and to memoize). With a disk cache active the spill lands
    in a cache entry (:meth:`DiskCache.put_path`) shared across
    processes; otherwise in a process-local temp directory cleaned up
    at exit. Cache-backed spills are **crash-safe**: they stage at a
    deterministic per-key path under ``<cache>/.spill/`` so a process
    killed mid-spill leaves a journaled partial that the next attempt
    resumes instead of restarting. Every returned root is registered in
    :data:`_SHARD_SOURCES` for :func:`heal_sharded_table`.
    """

    def register(path: str) -> str:
        _SHARD_SOURCES[path] = _ShardSource(
            kind=kind,
            key=key if cache is not None else None,
            rebuild=lambda: _sharded_build(
                kind, key_parts, build_table, shard_rows, group_by
            ),
        )
        return path

    cache = dataset_cache()
    key = None
    if cache is None:
        return register(_tmp_spill(build_table(), shard_rows, group_by, kind))
    key = cache_key(
        kind=kind,
        version=DATASET_CACHE_VERSION,
        repro=__version__,
        shard_rows=shard_rows,
        **key_parts,
    )
    path = cache.get_path(key)
    if path is not MISS:
        _STATS["disk_hits"] += 1
        return register(str(path))
    _STATS["disk_misses"] += 1
    table = build_table()
    stage = cache.root / ".spill" / key[:16]
    stage.mkdir(parents=True, exist_ok=True)
    dest = stage / "shards"
    _spill(table, dest, shard_rows, group_by, kind, resume=True)
    cache.put_path(key, dest, move=True)
    shutil.rmtree(stage, ignore_errors=True)
    path = cache.get_path(key)
    if path is not MISS:
        return register(str(path))
    # The entry was evicted before first use (cache budget smaller than
    # the spill) — fall back to a process-local spill.
    return register(_tmp_spill(table, shard_rows, group_by, kind))


def heal_sharded_table(root: str, message: str) -> str | None:
    """Quarantine a corrupt sharded table and re-derive it from source.

    The recovery path behind every :class:`ShardIntegrityError`: the
    damaged bytes are parked (disk-cache quarantine for cached tables,
    deletion for tmp spills), the sharded-path memos are dropped, and
    the table is rebuilt from its pure upstream builder — byte-identical
    by construction. Returns the fresh root, or ``None`` for a root this
    process never derived (the caller then re-raises).
    """
    source = _SHARD_SOURCES.get(str(root))
    if source is None:
        return None
    _STATS["shards_quarantined"] += 1
    cache = dataset_cache()
    if source.key is not None and cache is not None:
        cache.quarantine_entry(source.key)
    else:
        shutil.rmtree(root, ignore_errors=True)
    _SHARD_SOURCES.pop(str(root), None)
    sharded_google_jobs.cache_clear()
    sharded_task_durations.cache_clear()
    sharded_machine_usage.cache_clear()
    new_root = source.rebuild()
    _STATS["shards_rederived"] += 1
    return new_root


def open_sharded(path: str | Path, *, verify: str | None = None) -> ShardedTable:
    """Open a sharded table, healing it if its bytes fail validation.

    The backend's verify policy applies unless overridden. If open-time
    structural checks or digest verification reject the table, it is
    quarantined and re-derived once; a second failure propagates.
    """
    mode = verify if verify is not None else active_backend().verify
    try:
        return ShardedTable.open(path, verify=mode)
    except ShardIntegrityError as exc:
        healed = heal_sharded_table(str(path), str(exc))
        if healed is None:
            raise
        return ShardedTable.open(healed, verify=mode)


def _shard_injector(path: str):
    """Fault-injection hook for map-reduce workers over this table."""
    from . import faults  # lazy: faults imports this module at top level

    plan = faults.plan_from_env()
    if plan is None:
        return None
    source = _SHARD_SOURCES.get(str(path))
    kind = source.kind if source is not None else "*"
    if not plan.has_shard_faults(kind):
        return None
    return faults.ShardFaultInjector(plan=plan, table=kind)


def _mapreduce_config(backend: BackendSpec) -> MapReduceConfig:
    return MapReduceConfig(
        timeout=backend.block_timeout,
        retries=backend.block_retries,
        verify=backend.verify,
    )


def sharded_map_reduce(
    path: str | Path,
    kernel,
    *,
    args: tuple = (),
    jobs: int | None = None,
    merge=merge_accumulators,
):
    """Supervised :func:`repro.core.mapreduce.map_reduce` over a table path.

    The standard way experiments fold kernels over a sharded dataset:
    worker count, per-block timeout/retries and verify mode come from
    the active backend; shard corruption heals through
    :func:`heal_sharded_table`; fault plans inject through the worker
    hook; recovery counters land in :func:`dataset_stats`.
    """
    backend = active_backend()
    jobs = backend.jobs if jobs is None else jobs
    return map_reduce(
        open_sharded(path),
        kernel,
        args=args,
        jobs=jobs,
        merge=merge,
        config=_mapreduce_config(backend),
        inject=_shard_injector(str(path)),
        heal=heal_sharded_table,
        timings=_StatsCounter(),
    )


def sharded_map_shards(
    path: str | Path,
    kernel,
    *,
    args: tuple = (),
    jobs: int | None = None,
) -> list:
    """Supervised :func:`repro.core.mapreduce.map_shards` over a table path."""
    backend = active_backend()
    jobs = backend.jobs if jobs is None else jobs
    return map_shards(
        open_sharded(path),
        kernel,
        args=args,
        jobs=jobs,
        config=_mapreduce_config(backend),
        inject=_shard_injector(str(path)),
        heal=heal_sharded_table,
        timings=_StatsCounter(),
    )


@lru_cache(maxsize=8)
def sharded_google_jobs(
    scale: str = "paper", seed: int = 0, shard_rows: int = 1_000_000
) -> str:
    """Google job table spilled sorted by submit time (path string).

    The submit-time sort makes per-shard interarrival kernels exact:
    every shard holds a contiguous time range, so cross-shard gaps are
    single boundary differences (see fig5's gap state).
    """
    spec = _scale(scale)
    config = GoogleConfig(
        busy_window=spec.busy_window, busy_factor=spec.busy_factor
    )
    return _sharded_build(
        "workload-jobs-shards",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "grids": fingerprint(GRID_PRESETS),
            "order": "submit_time",
        },
        lambda: workload_dataset(scale, seed).google_jobs.sort_by(
            "submit_time"
        ),
        shard_rows,
    )


@lru_cache(maxsize=8)
def sharded_task_durations(
    scale: str = "paper", seed: int = 0, shard_rows: int = 1_000_000
) -> str:
    """Google task-duration sample as a single-column sharded table."""
    spec = _scale(scale)
    config = GoogleConfig(
        busy_window=spec.busy_window, busy_factor=spec.busy_factor
    )
    return _sharded_build(
        "workload-tasks-shards",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "columns": ("duration",),
        },
        lambda: Table(
            {"duration": workload_dataset(scale, seed).google_tasks.duration}
        ),
        shard_rows,
    )


@lru_cache(maxsize=8)
def sharded_machine_usage(
    scale: str = "paper", seed: int = 0, shard_rows: int = 1_000_000
) -> str:
    """Simulated machine-usage table spilled machine-major (path string).

    Rows are sorted by ``(machine_id, time)`` — the exact element order
    :func:`repro.hostload.series.grouped_machine_series` gathers — and
    shard cuts are aligned to machine boundaries (``group_by``), so a
    per-machine series is always contiguous within one shard.
    """
    spec = _scale(scale)
    config = sim_google_config(spec)
    return _sharded_build(
        "simulation-usage-shards",
        {
            "scale": fingerprint(spec),
            "seed": seed,
            "config": fingerprint(config),
            "sim": fingerprint(SimConfig()),
            "order": "machine_id,time",
        },
        lambda: simulation_dataset(scale, seed).result.machine_usage.sort_by(
            "machine_id", "time"
        ),
        shard_rows,
        group_by="machine_id",
    )


def grid_system_names() -> list[str]:
    """Names of the calibrated Grid/HPC systems, Table I order first."""
    order = [
        "AuverGrid",
        "NorduGrid",
        "SHARCNET",
        "ANL",
        "RICC",
        "METACENTRUM",
        "LLNL-Atlas",
        "DAS-2",
    ]
    return [n for n in order if n in GRID_PRESETS]
