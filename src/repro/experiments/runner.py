"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments                     # run everything at paper scale
    repro-experiments fig4 tab1 --scale small --seed 1
    repro-experiments --jobs 4 --profile  # parallel, with a timing footer
    repro-experiments --json timing.json  # machine-readable run report

    repro-run --jobs 4 --retries 2 --timeout 600   # supervised run
    repro-run --resume <run-id>                    # finish an interrupted run

Rendered results go to stdout in id order and depend only on
``(scale, seed)``, so ``--jobs N`` output is byte-identical to a
serial run — and so is a faulted-but-recovered or resumed run. Timing
footers, the JSON report, the run id and error reports go to stderr /
the ``--json`` target, keeping stdout reproducible.

Fault tolerance: ``--retries`` re-attempts worker crashes, timeouts and
cache corruption with seeded exponential backoff; ``--timeout`` kills
hung workers; ``--deadline`` bounds the whole run. With a cache dir,
finished experiments checkpoint to a journal so ``--resume <run-id>``
re-executes only unfinished work. ``--fault-plan`` (or the
``REPRO_FAULT_PLAN`` environment variable) injects deterministic
faults — see :mod:`repro.experiments.faults`.

Datasets are cached on disk under ``--cache-dir`` (default:
``$REPRO_CACHE_DIR`` or ``~/.cache/repro/datasets``); a second run at
the same scale/seed is a warm-cache operation with zero trace
generation or simulation. ``--no-cache`` disables the disk cache.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
from collections.abc import Sequence
from pathlib import Path

from ..core.timing import Timings, render_timings
from .datasets import (
    SCALES,
    BackendSpec,
    configure_backend,
    configure_cache,
    default_cache_dir,
    reset_dataset_stats,
)
from .faults import PLAN_ENV, FaultPlan, plan_from_env
from .parallel import run_experiments
from .registry import EXPERIMENTS
from .supervisor import (
    SupervisorConfig,
    journal_path,
    load_journal,
    run_id,
    run_supervised,
    write_journal_header,
)

__all__ = ["main"]

_DEFAULT_SCALE = "paper"
_DEFAULT_SEED = 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Characterization and "
            "Comparison of Cloud versus Grid Workloads' (CLUSTER 2012)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help=f"dataset scale (default: {_DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: 0)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-experiment wall-clock budget; a worker past it is "
            "killed and the attempt classified 'timeout'"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "extra attempts per experiment for transient failures "
            "(crash/timeout/cache corruption), with seeded exponential "
            "backoff (default: 0)"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "overall run budget; past it, live workers are terminated "
            "and remaining experiments report 'cancelled'"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help=(
            "resume an interrupted run from its checkpoint journal, "
            "re-executing only unfinished experiments (requires the "
            "same cache dir)"
        ),
    )
    stop_policy = parser.add_mutually_exclusive_group()
    stop_policy.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="cancel the rest of the run on the first permanent failure",
    )
    stop_policy.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="run every experiment even after failures (default)",
    )
    parser.set_defaults(fail_fast=False)
    parser.add_argument(
        "--fault-plan",
        metavar="PATH_OR_JSON",
        default=None,
        help=(
            "inject deterministic faults from a JSON plan (file path or "
            "inline JSON; also read from $REPRO_FAULT_PLAN)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "dataset disk-cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/datasets)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk dataset cache (and run journaling)",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sharded"),
        default="memory",
        help=(
            "dataset backend: in-memory arrays, or out-of-core sharded "
            "tables streamed by map-reduce kernels (byte-identical "
            "output, bounded peak memory)"
        ),
    )
    parser.add_argument(
        "--shard-rows",
        type=int,
        default=1_000_000,
        metavar="N",
        help="rows per shard for --backend sharded (default: 1000000)",
    )
    parser.add_argument(
        "--block-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "kill a sharded map-reduce block worker stuck longer than "
            "this and retry it (default: no block timeout)"
        ),
    )
    parser.add_argument(
        "--block-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "extra attempts per crashed/timed-out map-reduce block "
            "before it runs inline (default: 2)"
        ),
    )
    parser.add_argument(
        "--verify-shards",
        choices=("none", "lazy", "full"),
        default="lazy",
        help=(
            "shard digest verification: 'lazy' checks each shard on "
            "first read, 'full' checks everything at open, 'none' "
            "skips digests (structural checks always run)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a machine-readable timing/cache report ('-' = stderr)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing footer to stderr",
    )
    return parser


def _json_report(
    args: argparse.Namespace,
    outcomes,
    timings: Timings,
    cache_dir: Path | None,
    *,
    scale: str,
    seed: int,
    run: str | None,
) -> dict[str, object]:
    per_experiment = []
    for outcome in outcomes:
        stages = outcome.timings.stages
        run_stage = stages.get(f"run:{outcome.experiment_id}")
        entry: dict[str, object] = {
            "id": outcome.experiment_id,
            "ok": outcome.ok,
            "attempts": outcome.attempts,
            "resumed": outcome.resumed,
            "wall_s": round(run_stage.wall_s, 6) if run_stage else None,
            "cpu_s": round(run_stage.cpu_s, 6) if run_stage else None,
        }
        if not outcome.ok:
            entry["error"] = outcome.error
            entry["error_kind"] = outcome.error_kind
        per_experiment.append(entry)
    # ru_maxrss is KiB on Linux; take the worst of this process and its
    # reaped workers so a bounded-memory claim covers the whole tree.
    peak_rss_kb = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    return {
        "scale": scale,
        "seed": seed,
        "jobs": args.jobs,
        "run_id": run,
        "backend": {
            "name": args.backend,
            "shard_rows": args.shard_rows,
            "block_timeout": args.block_timeout,
            "block_retries": args.block_retries,
            "verify": args.verify_shards,
        },
        "peak_rss_kb": int(peak_rss_kb),
        "cache": {
            "enabled": cache_dir is not None,
            "dir": str(cache_dir) if cache_dir is not None else None,
        },
        "experiments": per_experiment,
        **timings.as_dict(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        if args.experiments:
            print(
                "--list cannot be combined with experiment ids: "
                f"{args.experiments}",
                file=sys.stderr,
            )
            return 2
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            first = doc[0] if doc else ""
            print(f"{exp_id:8s} {first}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.shard_rows < 1:
        print(
            f"--shard-rows must be >= 1, got {args.shard_rows}",
            file=sys.stderr,
        )
        return 2
    if args.retries < 0:
        print(f"--retries must be >= 0, got {args.retries}", file=sys.stderr)
        return 2
    if args.block_retries < 0:
        print(
            f"--block-retries must be >= 0, got {args.block_retries}",
            file=sys.stderr,
        )
        return 2
    if args.block_timeout is not None and args.block_timeout <= 0:
        print(
            f"--block-timeout must be > 0, got {args.block_timeout}",
            file=sys.stderr,
        )
        return 2
    for name in ("timeout", "deadline"):
        value = getattr(args, name)
        if value is not None and value <= 0:
            print(f"--{name} must be > 0, got {value}", file=sys.stderr)
            return 2

    try:
        if args.fault_plan is not None:
            plan = FaultPlan.load(args.fault_plan)
        else:
            plan = plan_from_env()
    except (OSError, ValueError, TypeError) as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 2

    cache_dir: Path | None
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = default_cache_dir()

    scale = args.scale if args.scale is not None else _DEFAULT_SCALE
    seed = args.seed if args.seed is not None else _DEFAULT_SEED
    ids = args.experiments or list(EXPERIMENTS)
    completed = None
    if args.resume is not None:
        if cache_dir is None:
            print(
                "--resume needs the checkpoint journal; it cannot be "
                "combined with --no-cache",
                file=sys.stderr,
            )
            return 2
        if args.experiments:
            print(
                "--resume restores the original experiment list; drop the "
                f"explicit ids {args.experiments}",
                file=sys.stderr,
            )
            return 2
        journal = journal_path(cache_dir, args.resume)
        if not journal.exists():
            print(
                f"no journal for run {args.resume} under {cache_dir}",
                file=sys.stderr,
            )
            return 2
        header, completed = load_journal(journal)
        for flag, given, recorded in (
            ("--scale", args.scale, header.get("scale")),
            ("--seed", args.seed, header.get("seed")),
        ):
            if given is not None and given != recorded:
                print(
                    f"{flag} {given} conflicts with resumed run "
                    f"{args.resume} (recorded: {recorded})",
                    file=sys.stderr,
                )
                return 2
        ids = [str(i) for i in header.get("ids", ids)]
        scale = str(header.get("scale", scale))
        seed = int(header.get("seed", seed))  # type: ignore[arg-type]
        done = sum(1 for o in completed.values() if o.ok)
        print(
            f"resuming run {args.resume}: scale={scale} seed={seed}, "
            f"{done}/{len(ids)} experiments already finished",
            file=sys.stderr,
        )

    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    configure_cache(cache_dir)
    configure_backend(
        BackendSpec(
            name=args.backend,
            shard_rows=args.shard_rows,
            jobs=args.jobs,
            block_timeout=args.block_timeout,
            block_retries=args.block_retries,
            verify=args.verify_shards,
        )
    )
    if args.fault_plan is not None:
        # Spawn-based map-reduce workers and spill hooks read the plan
        # from the environment; export an explicit --fault-plan so the
        # out-of-core fault kinds reach them too.
        os.environ[PLAN_ENV] = args.fault_plan
    reset_dataset_stats()

    supervised = (
        args.jobs > 1
        or args.timeout is not None
        or args.retries > 0
        or args.deadline is not None
        or args.resume is not None
        or args.fail_fast
        or plan is not None
    )

    journal = None
    run = None
    if supervised and cache_dir is not None:
        run = run_id(ids, scale, seed)
        journal = journal_path(cache_dir, run)
        if args.resume is None:
            write_journal_header(journal, ids, scale, seed)
        print(
            f"run id: {run} (resume an interrupted run with --resume {run})",
            file=sys.stderr,
        )

    timings = Timings()
    with timings.stage("total"):
        if supervised:
            outcomes = run_supervised(
                ids,
                scale=scale,
                seed=seed,
                config=SupervisorConfig(
                    jobs=args.jobs,
                    timeout=args.timeout,
                    retries=args.retries,
                    deadline=args.deadline,
                    fail_fast=args.fail_fast,
                ),
                timings=timings,
                plan=plan,
                journal=journal,
                completed=completed,
            )
        else:
            outcomes = run_experiments(
                ids, scale=scale, seed=seed, jobs=args.jobs, timings=timings
            )

    failures = []
    for outcome in outcomes:
        if outcome.ok:
            print(outcome.rendered)
            print()
        else:
            failures.append(outcome)
            kind = f" [{outcome.error_kind}]" if outcome.error_kind else ""
            print(
                f"experiment {outcome.experiment_id} failed{kind}: "
                f"{outcome.error}",
                file=sys.stderr,
            )
    if failures:
        failed_ids = [o.experiment_id for o in failures]
        print(
            f"{len(failures)}/{len(outcomes)} experiments failed: {failed_ids}",
            file=sys.stderr,
        )

    if args.profile:
        print(render_timings(timings), file=sys.stderr)
    if args.json is not None:
        report = _json_report(
            args, outcomes, timings, cache_dir, scale=scale, seed=seed, run=run
        )
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(text, file=sys.stderr)
        else:
            Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
