"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments                     # run everything at paper scale
    repro-experiments fig4 tab1 --scale small --seed 1
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .datasets import SCALES
from .registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Characterization and "
            "Comparison of Cloud versus Grid Workloads' (CLUSTER 2012)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="paper",
        help="dataset scale (default: paper)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            first = doc[0] if doc else ""
            print(f"{exp_id:8s} {first}")
        return 0
    ids = args.experiments or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
