"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments                     # run everything at paper scale
    repro-experiments fig4 tab1 --scale small --seed 1
    repro-experiments --jobs 4 --profile  # parallel, with a timing footer
    repro-experiments --json timing.json  # machine-readable run report

Rendered results go to stdout in id order and depend only on
``(scale, seed)``, so ``--jobs N`` output is byte-identical to a
serial run. Timing footers, the JSON report and error reports go to
stderr / the ``--json`` target, keeping stdout reproducible.

Datasets are cached on disk under ``--cache-dir`` (default:
``$REPRO_CACHE_DIR`` or ``~/.cache/repro/datasets``); a second run at
the same scale/seed is a warm-cache operation with zero trace
generation or simulation. ``--no-cache`` disables the disk cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from ..core.timing import Timings, render_timings
from .datasets import SCALES, configure_cache, default_cache_dir, reset_dataset_stats
from .parallel import run_experiments
from .registry import EXPERIMENTS

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Characterization and "
            "Comparison of Cloud versus Grid Workloads' (CLUSTER 2012)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="paper",
        help="dataset scale (default: paper)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "dataset disk-cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/datasets)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk dataset cache",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a machine-readable timing/cache report ('-' = stderr)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing footer to stderr",
    )
    return parser


def _json_report(
    args: argparse.Namespace, outcomes, timings: Timings, cache_dir: Path | None
) -> dict[str, object]:
    per_experiment = []
    for outcome in outcomes:
        stages = outcome.timings.stages
        run = stages.get(f"run:{outcome.experiment_id}")
        entry: dict[str, object] = {
            "id": outcome.experiment_id,
            "ok": outcome.ok,
            "wall_s": round(run.wall_s, 6) if run else None,
            "cpu_s": round(run.cpu_s, 6) if run else None,
        }
        if not outcome.ok:
            entry["error"] = outcome.error
        per_experiment.append(entry)
    return {
        "scale": args.scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "cache": {
            "enabled": cache_dir is not None,
            "dir": str(cache_dir) if cache_dir is not None else None,
        },
        "experiments": per_experiment,
        **timings.as_dict(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        if args.experiments:
            print(
                "--list cannot be combined with experiment ids: "
                f"{args.experiments}",
                file=sys.stderr,
            )
            return 2
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            first = doc[0] if doc else ""
            print(f"{exp_id:8s} {first}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    ids = args.experiments or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    cache_dir: Path | None
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = default_cache_dir()
    configure_cache(cache_dir)
    reset_dataset_stats()

    timings = Timings()
    with timings.stage("total"):
        outcomes = run_experiments(
            ids, scale=args.scale, seed=args.seed, jobs=args.jobs, timings=timings
        )

    failures = []
    for outcome in outcomes:
        if outcome.ok:
            print(outcome.rendered)
            print()
        else:
            failures.append(outcome)
            print(
                f"experiment {outcome.experiment_id} failed: {outcome.error}",
                file=sys.stderr,
            )
    if failures:
        failed_ids = [o.experiment_id for o in failures]
        print(
            f"{len(failures)}/{len(outcomes)} experiments failed: {failed_ids}",
            file=sys.stderr,
        )

    if args.profile:
        print(render_timings(timings), file=sys.stderr)
    if args.json is not None:
        report = _json_report(args, outcomes, timings, cache_dir)
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(text, file=sys.stderr)
        else:
            Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
