"""Extension 1 — diurnal structure of submission streams.

Quantifies the periodicity claim behind Table I's fairness gap (and
H. Li's Grid-dynamics results the paper builds on): Grid arrival
streams swing through a strong day/night cycle while the Cloud stream
is nearly flat.
"""

from __future__ import annotations

import numpy as np

from ..core.fairness import hourly_counts
from ..core.spectral import daily_profile_amplitude
from .base import ExperimentResult, ResultTable
from .datasets import grid_system_names, workload_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = workload_dataset(scale, seed)
    systems = {"Google": data.google_jobs}
    systems.update({n: data.grid_jobs[n] for n in grid_system_names()})

    rows = []
    amplitudes: dict[str, float] = {}
    for name, jobs in systems.items():
        counts = hourly_counts(
            np.asarray(jobs["submit_time"]), data.horizon
        ).astype(float)
        amp = daily_profile_amplitude(counts, 24)
        amplitudes[name] = amp
        rows.append((name, round(amp, 3)))

    grid_amps = [v for k, v in amplitudes.items() if k != "Google"]
    return ExperimentResult(
        experiment_id="ext1",
        title="Diurnal amplitude of job submissions",
        tables=(
            ResultTable.build(
                "daily-profile amplitude (max-min)/mean of hourly rates",
                ("system", "amplitude"),
                rows,
            ),
        ),
        metrics={
            "google_amplitude": round(amplitudes["Google"], 3),
            "min_grid_amplitude": round(min(grid_amps), 3),
            "grids_all_more_diurnal": all(
                a > amplitudes["Google"] for a in grid_amps
            ),
        },
        paper_reference={
            "finding": (
                "Grid job submissions exhibit significantly low fairness "
                "because of their strong diurnal periodicity (Sec. III.3)"
            ),
        },
        notes="Every Grid stream swings through a deeper day/night cycle.",
    )
