"""Fig. 7 — distribution of maximum host load per capacity group.

The paper finds CPU maxima pinned at capacity (>80%/70% of low/middle
capacity machines hit their cap), memory maxima around ~80% of
capacity (OS overhead), assigned memory near ~90%, and a page-cache
distribution with its own spread.
"""

from __future__ import annotations

from ..hostload.maxload import max_load_by_capacity
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run", "ATTRIBUTES"]

ATTRIBUTES = ("cpu", "mem", "mem_assigned", "page_cache")


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    rows = []
    metrics: dict[str, object] = {}
    for attribute in ATTRIBUTES:
        groups = max_load_by_capacity(data.series, attribute)
        for cap, dist in groups.items():
            rows.append(
                (
                    attribute,
                    cap,
                    dist.num_machines,
                    round(dist.mean_relative(), 3),
                    round(dist.fraction_at_capacity(tolerance=0.05), 3),
                )
            )
    cpu_groups = max_load_by_capacity(data.series, "cpu")
    caps = sorted(cpu_groups)
    if caps:
        low = cpu_groups[caps[0]]
        metrics["cpu_lowcap_frac_at_capacity"] = round(
            low.fraction_at_capacity(tolerance=0.05), 3
        )
    mem_groups = max_load_by_capacity(data.series, "mem")
    mem_rel = [d.mean_relative() for d in mem_groups.values() if d.num_machines]
    metrics["mem_mean_relative_max"] = round(
        sum(mem_rel) / len(mem_rel), 3
    ) if mem_rel else 0.0
    asg_groups = max_load_by_capacity(data.series, "mem_assigned")
    asg_rel = [d.mean_relative() for d in asg_groups.values() if d.num_machines]
    metrics["mem_assigned_mean_relative_max"] = round(
        sum(asg_rel) / len(asg_rel), 3
    ) if asg_rel else 0.0
    metrics["assigned_exceeds_consumed"] = (
        metrics["mem_assigned_mean_relative_max"]
        > metrics["mem_mean_relative_max"]
    )

    return ExperimentResult(
        experiment_id="fig7",
        title="Maximum host load per capacity group",
        tables=(
            ResultTable.build(
                "Fig. 7: per (attribute, capacity) max-load statistics",
                (
                    "attribute",
                    "capacity",
                    "machines",
                    "mean_max/capacity",
                    "frac_at_capacity",
                ),
                rows,
            ),
        ),
        metrics=metrics,
        paper_reference={
            "cpu": ">80%/70% of low/middle-CPU machines max out at capacity",
            "mem": "max consumed memory ~80% of capacity (system overhead)",
            "mem_assigned": "~90% of capacity with high probability",
        },
        notes=(
            "CPU maxima sit at/near capacity while consumed memory maxima "
            "stay below assigned memory, matching the figure's ordering."
        ),
    )
