"""Fig. 7 — distribution of maximum host load per capacity group.

The paper finds CPU maxima pinned at capacity (>80%/70% of low/middle
capacity machines hit their cap), memory maxima around ~80% of
capacity (OS overhead), assigned memory near ~90%, and a page-cache
distribution with its own spread.
"""

from __future__ import annotations

import numpy as np

from ..core.table import Table
from ..hostload.maxload import MaxLoadDistribution, max_load_by_capacity
from .base import ExperimentResult, ResultTable
from .datasets import (
    active_backend,
    sharded_machine_usage,
    sharded_map_reduce,
    simulation_dataset,
)

__all__ = ["run", "ATTRIBUTES"]

ATTRIBUTES = ("cpu", "mem", "mem_assigned", "page_cache")

#: Usage column backing each attribute (shard kernel side).
_USAGE_COLUMN = {
    "cpu": "cpu_usage",
    "mem": "mem_usage",
    "mem_assigned": "mem_assigned",
    "page_cache": "page_cache",
}

#: Machines-table capacity column grouping each attribute (mirrors
#: ``repro.hostload.maxload._CAPACITY_ATTR`` via the machines schema).
_CAPACITY_COLUMN = {
    "cpu": "cpu_capacity",
    "mem": "mem_capacity",
    "mem_assigned": "mem_capacity",
    "page_cache": "page_cache_capacity",
}


def _machine_maxima(shard) -> dict[int, dict[str, float]]:
    """Map kernel: per-machine max of each usage attribute in one shard.

    The usage spill is machine-major and group-aligned, so every
    machine's full series sits contiguously in exactly one shard;
    ``np.maximum.reduceat`` over the run starts gives the same float
    maxima as ``MachineLoadSeries.max_load`` (max is exact under any
    grouping).
    """
    ids = np.asarray(shard["machine_id"])
    starts = np.concatenate(
        ([0], np.flatnonzero(ids[1:] != ids[:-1]) + 1)
    )
    maxima = {
        attr: np.maximum.reduceat(np.asarray(shard[col]), starts)
        for attr, col in _USAGE_COLUMN.items()
    }
    return {
        int(mid): {attr: float(maxima[attr][k]) for attr in ATTRIBUTES}
        for k, mid in enumerate(ids[starts].tolist())
    }


def _merge_maxima(left: dict, right: dict) -> dict:
    left.update(right)
    return left


def _sharded_max_load_groups(
    machines: Table, maxima: dict[int, dict[str, float]], attribute: str
) -> dict[float, MaxLoadDistribution]:
    """Rebuild Fig. 7's capacity groups from per-machine maxima.

    Buckets in machines-table order with duplicate/missing machines
    skipped — the same iteration :func:`max_load_by_capacity` performs
    over the grouped series dict — so group membership, order, and
    every float match the memory backend.
    """
    cap_col = _CAPACITY_COLUMN[attribute]
    buckets: dict[float, list[float]] = {}
    seen: set[int] = set()
    for i, machine_id in enumerate(machines["machine_id"]):
        mid = int(machine_id)
        if mid in seen or mid not in maxima:
            continue
        seen.add(mid)
        cap = round(float(machines[cap_col][i]), 6)
        buckets.setdefault(cap, []).append(maxima[mid][attribute])
    return {
        cap: MaxLoadDistribution(
            attribute=attribute, capacity=cap, max_loads=np.asarray(values)
        )
        for cap, values in sorted(buckets.items())
    }


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)
    backend = active_backend()
    if backend.name == "sharded":
        maxima = sharded_map_reduce(
            sharded_machine_usage(scale, seed, backend.shard_rows),
            _machine_maxima,
            merge=_merge_maxima,
        )
        machines = data.result.machines

        def groups_for(attribute: str) -> dict[float, MaxLoadDistribution]:
            return _sharded_max_load_groups(machines, maxima or {}, attribute)

    else:

        def groups_for(attribute: str) -> dict[float, MaxLoadDistribution]:
            return max_load_by_capacity(data.series, attribute)

    rows = []
    metrics: dict[str, object] = {}
    for attribute in ATTRIBUTES:
        groups = groups_for(attribute)
        for cap, dist in groups.items():
            rows.append(
                (
                    attribute,
                    cap,
                    dist.num_machines,
                    round(dist.mean_relative(), 3),
                    round(dist.fraction_at_capacity(tolerance=0.05), 3),
                )
            )
    cpu_groups = groups_for("cpu")
    caps = sorted(cpu_groups)
    if caps:
        low = cpu_groups[caps[0]]
        metrics["cpu_lowcap_frac_at_capacity"] = round(
            low.fraction_at_capacity(tolerance=0.05), 3
        )
    mem_groups = groups_for("mem")
    mem_rel = [d.mean_relative() for d in mem_groups.values() if d.num_machines]
    metrics["mem_mean_relative_max"] = round(
        sum(mem_rel) / len(mem_rel), 3
    ) if mem_rel else 0.0
    asg_groups = groups_for("mem_assigned")
    asg_rel = [d.mean_relative() for d in asg_groups.values() if d.num_machines]
    metrics["mem_assigned_mean_relative_max"] = round(
        sum(asg_rel) / len(asg_rel), 3
    ) if asg_rel else 0.0
    metrics["assigned_exceeds_consumed"] = (
        metrics["mem_assigned_mean_relative_max"]
        > metrics["mem_mean_relative_max"]
    )

    return ExperimentResult(
        experiment_id="fig7",
        title="Maximum host load per capacity group",
        tables=(
            ResultTable.build(
                "Fig. 7: per (attribute, capacity) max-load statistics",
                (
                    "attribute",
                    "capacity",
                    "machines",
                    "mean_max/capacity",
                    "frac_at_capacity",
                ),
                rows,
            ),
        ),
        metrics=metrics,
        paper_reference={
            "cpu": ">80%/70% of low/middle-CPU machines max out at capacity",
            "mem": "max consumed memory ~80% of capacity (system overhead)",
            "mem_assigned": "~90% of capacity with high probability",
        },
        notes=(
            "CPU maxima sit at/near capacity while consumed memory maxima "
            "stay below assigned memory, matching the figure's ordering."
        ),
    )
