"""Fig. 12 — mass-count disparity of relative memory usage.

Paper: joint ratio ~43/57 with mm-distance ~8% (all priorities) and
~41/59 / ~13% (high priority); memory load ~60% overall and ~50% for
high-priority tasks — higher than CPU in both views.
"""

from __future__ import annotations

import numpy as np

from ..hostload.levels import usage_mass_count
from ..hostload.priority import band_usage
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run"]


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    data = simulation_dataset(scale, seed)

    mc_all = usage_mass_count(data.series, "mem")
    mc_high = usage_mass_count(data.series, "mem_high")

    mean_mem = float(
        np.mean([band_usage(s, "mem", "all").mean() for s in data.series.values()])
    )
    mean_mem_high = float(
        np.mean([band_usage(s, "mem", "high").mean() for s in data.series.values()])
    )
    mean_cpu = float(
        np.mean([band_usage(s, "cpu", "all").mean() for s in data.series.values()])
    )

    rows = [
        (
            "all priorities",
            f"{mc_all.joint_ratio[0]:.0f}/{mc_all.joint_ratio[1]:.0f}",
            round(100 * mc_all.mm_distance_relative(1.0), 1),
            round(100 * mean_mem, 1),
        ),
        (
            "high priority",
            f"{mc_high.joint_ratio[0]:.0f}/{mc_high.joint_ratio[1]:.0f}",
            round(100 * mc_high.mm_distance_relative(1.0), 1),
            round(100 * mean_mem_high, 1),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig12",
        title="Mass-count disparity of memory usage",
        tables=(
            ResultTable.build(
                "Fig. 12: memory usage mass-count",
                ("tasks", "joint_ratio", "mmdist_%", "mean_usage_%"),
                rows,
            ),
        ),
        metrics={
            "all_joint_small_side": round(mc_all.joint_ratio[0], 1),
            "high_joint_small_side": round(mc_high.joint_ratio[0], 1),
            "mean_mem_usage_pct": round(100 * mean_mem, 1),
            "mean_mem_usage_high_pct": round(100 * mean_mem_high, 1),
            "mem_above_cpu": mean_mem > mean_cpu,
        },
        paper_reference={
            "all": "joint ratio 43/57, mmdist 8%, load ~60%",
            "high": "joint ratio 41/59, mmdist 13%, load ~50%",
            "finding": "memory usage is much higher than CPU usage",
        },
        notes=(
            "Memory load exceeds CPU load and its distribution is close to "
            "uniform, matching Fig. 12."
        ),
    )
