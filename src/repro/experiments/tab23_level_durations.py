"""Tables II & III — continuous duration of unchanged usage level.

CPU levels flip roughly every 6 minutes with joint ratios near 30/70
and mm-distances of 18-49 minutes; memory levels persist longer (~10
minutes average) with stronger skew (~20/80) and mm-distances up to
~350 minutes — CPU usage changes much more frequently than memory.
"""

from __future__ import annotations

import numpy as np

from ..hostload.levels import duration_stats_by_level, pooled_level_durations
from .base import ExperimentResult, ResultTable
from .datasets import simulation_dataset

__all__ = ["run", "run_cpu", "run_mem"]


def _table_for(attribute: str, data) -> tuple[ResultTable, dict[str, object]]:
    pooled = pooled_level_durations(data.series, attribute)
    stats = duration_stats_by_level(pooled)
    rows = []
    for s in stats:
        rows.append(
            (
                s.interval,
                s.count,
                round(s.avg_minutes, 1),
                round(s.max_minutes, 0),
                f"{s.joint_ratio[0]:.0f}/{s.joint_ratio[1]:.0f}",
                round(s.mm_distance_minutes, 1),
            )
        )
    # Rarely-visited levels give degenerate joint ratios (a handful of
    # near-identical durations); summarize the well-populated ones.
    total_runs = sum(s.count for s in stats)
    threshold = max(50, int(0.02 * total_runs))
    populated = [s for s in stats if s.count >= threshold]
    avg_all = (
        float(
            np.average(
                [s.avg_minutes for s in populated],
                weights=[s.count for s in populated],
            )
        )
        if populated
        else 0.0
    )
    metrics = {
        f"{attribute}_weighted_avg_duration_min": round(avg_all, 1),
        f"{attribute}_joint_small_sides": tuple(
            round(s.joint_ratio[0], 0) for s in populated
        ),
    }
    table = ResultTable.build(
        f"unchanged {attribute.upper()} usage level durations",
        ("interval", "count", "avg_min", "max_min", "joint_ratio", "mmdist_min"),
        rows,
    )
    return table, metrics


def run_cpu(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Table II (CPU)."""
    data = simulation_dataset(scale, seed)
    table, metrics = _table_for("cpu", data)
    return ExperimentResult(
        experiment_id="tab2",
        title="Continuous duration of unchanged CPU usage level",
        tables=(table,),
        metrics=metrics,
        paper_reference={
            "avg_minutes": "5-6 across all levels",
            "joint_ratios": "26/74 .. 30/70",
            "mm_distance_min": "18-49",
        },
        notes="CPU levels change within minutes — the volatile resource.",
    )


def run_mem(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Table III (memory)."""
    data = simulation_dataset(scale, seed)
    table, metrics = _table_for("mem", data)
    return ExperimentResult(
        experiment_id="tab3",
        title="Continuous duration of unchanged memory usage level",
        tables=(table,),
        metrics=metrics,
        paper_reference={
            "avg_minutes": "6-10 across levels",
            "joint_ratios": "18/82 .. 26/74",
            "mm_distance_min": "63-351",
        },
        notes="Memory levels persist longer than CPU levels.",
    )


def matched_level_comparison(data) -> bool:
    """True when CPU levels flip faster than memory levels.

    Compared per usage level (both attributes populated with >= 10
    runs): the majority of matched levels must show a shorter average
    CPU duration. A level-matched comparison avoids the bias where one
    attribute sits deep inside a level and rarely crosses a boundary.
    """
    cpu_stats = duration_stats_by_level(pooled_level_durations(data.series, "cpu"))
    mem_stats = duration_stats_by_level(pooled_level_durations(data.series, "mem"))
    wins = ties = 0
    for c, m in zip(cpu_stats, mem_stats):
        if c.count >= 10 and m.count >= 10:
            ties += 1
            if c.avg_minutes < m.avg_minutes:
                wins += 1
    return ties > 0 and wins * 2 > ties


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Both tables plus the CPU-vs-memory comparison metric."""
    data = simulation_dataset(scale, seed)
    cpu_table, cpu_metrics = _table_for("cpu", data)
    mem_table, mem_metrics = _table_for("mem", data)
    return ExperimentResult(
        experiment_id="tab2+tab3",
        title="Unchanged usage-level durations (CPU vs memory)",
        tables=(cpu_table, mem_table),
        metrics={
            **cpu_metrics,
            **mem_metrics,
            "cpu_changes_faster_than_mem": matched_level_comparison(data),
        },
        paper_reference={
            "finding": "CPU usage changes much more frequently than memory",
        },
        notes="The CPU/memory volatility ordering matches Tables II-III.",
    )
