"""Cloud-vs-Grid workload comparison across all nine systems.

Generates one week of calibrated workload for Google plus the eight
Grid/HPC systems the paper compares against (AuverGrid, NorduGrid,
SHARCNET, ANL, RICC, METACENTRUM, LLNL-Atlas, DAS-2), then prints the
Table-I-style submission statistics, the Fig. 3 job-length CDF rows and
the paper's headline verdicts computed from the data.

Run:  python examples/compare_cloud_grid.py
"""

from __future__ import annotations

import numpy as np

from repro.core import compare_systems, render_kv, render_table
from repro.synth import (
    DAY,
    GoogleConfig,
    generate_all_grids,
    generate_google_jobs,
)
from repro.traces import grid_jobs_to_job_table

HORIZON = 7 * DAY


def main() -> None:
    google = generate_google_jobs(
        HORIZON, seed=1, config=GoogleConfig(busy_window=None)
    )
    grids = {
        name: grid_jobs_to_job_table(table)
        for name, table in generate_all_grids(HORIZON, seed=2).items()
    }
    comparison = compare_systems(google, grids, horizon=HORIZON)

    rows = []
    for workload in (comparison.cloud, *comparison.grids.values()):
        s = workload.submission
        rows.append(
            (
                workload.name,
                s.max_per_hour,
                round(s.avg_per_hour, 1),
                s.min_per_hour,
                round(s.fairness, 2),
                round(workload.mean_job_length, 0),
                round(float(workload.job_length_cdf(1000.0)), 2),
            )
        )
    print(
        render_table(
            (
                "system",
                "max/h",
                "avg/h",
                "min/h",
                "fairness",
                "mean job len (s)",
                "P(len<=1000s)",
            ),
            rows,
            title="Table I + Fig. 3 summary (one synthetic week):",
        )
    )

    print()
    headline = comparison.headline()
    print(render_kv(headline, title="headline Cloud-vs-Grid verdicts:"))


if __name__ == "__main__":
    main()
