"""Capacity planning: consolidation potential of a simulated cluster.

The paper's introduction motivates load characterization with VM
consolidation: "using fewer machines and shutting off unneeded hosts".
This example simulates a 16-machine cluster for two days, bin-packs the
measured demand at every half hour, and reports how much of the fleet a
consolidating resource manager could power down — overall, during the
quietest hour and at the demand peak — plus the per-user concentration
of the workload driving it.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import consolidation_potential, user_summary
from repro.core import render_kv
from repro.hostload import all_machine_series
from repro.sim import ClusterSimulator, SimConfig, jobs_from_events
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

DAY = 86400.0


def main() -> None:
    rng = np.random.default_rng(31)
    machines = generate_machines(16, rng)
    horizon = 2 * DAY
    requests = generate_task_requests(
        horizon,
        seed=32,
        config=GoogleConfig(busy_window=None, cpu_utilization_range=(0.25, 0.7)),
        tasks_per_hour=14.0 * 16,
    )
    print(f"simulating {len(requests)} task requests on 16 machines ...")
    result = ClusterSimulator(machines, SimConfig(), seed=33).run(
        requests, horizon
    )
    series = all_machine_series(result.machine_usage, result.machines)

    for headroom in (0.05, 0.2):
        report = consolidation_potential(series, headroom=headroom, stride=6)
        print()
        print(
            render_kv(
                {
                    "headroom": headroom,
                    "fleet size": report.fleet_size,
                    "mean machines needed": round(report.mean_needed, 1),
                    "peak machines needed": report.peak_needed,
                    "mean shutoff fraction": round(
                        report.mean_shutoff_fraction, 3
                    ),
                    "always-off fraction": round(
                        report.always_shutoff_fraction, 3
                    ),
                },
                title=f"consolidation potential (headroom={headroom:.0%}):",
            )
        )

    jobs = jobs_from_events(result.task_events, horizon)
    # The simulator's event log carries no user ids; attribute jobs to
    # synthetic users with the Google model's user fan-out for the
    # concentration analysis.
    user_rng = np.random.default_rng(34)
    jobs = jobs.with_columns(
        user_id=user_rng.integers(0, 100, jobs.num_rows)
    )
    summary = user_summary(jobs)
    print()
    print(
        render_kv(
            {
                "users": summary.num_users,
                "jobs per user (mean)": round(summary.jobs_per_user_mean, 1),
                "top-10 user share": round(summary.top10_share, 3),
                "fairness across users": round(
                    summary.fairness_across_users, 3
                ),
            },
            title="who drives the load:",
        )
    )


if __name__ == "__main__":
    main()
