"""Host-load prediction: the paper's announced future work.

Simulates a Google-style host and synthesizes a Grid host, then
backtests one-step-ahead predictors (last-value, moving average, EWMA,
AR(4), Markov levels) on both CPU-load series. The punchline quantifies
the paper's closing claim: Cloud host load is much harder to predict
than Grid host load because of its ~20x noise.

Run:  python examples/hostload_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import render_table
from repro.hostload import all_machine_series
from repro.prediction import (
    EWMA,
    AutoRegressive,
    LastValue,
    MarkovLevel,
    MovingAverage,
    compare_predictors,
)
from repro.sim import ClusterSimulator, SimConfig
from repro.synth import (
    GoogleConfig,
    generate_grid_host_series,
    generate_machines,
    generate_task_requests,
)

DAY = 86400.0


def google_host_series(horizon: float) -> np.ndarray:
    rng = np.random.default_rng(21)
    machines = generate_machines(8, rng)
    requests = generate_task_requests(
        horizon,
        seed=22,
        config=GoogleConfig(busy_window=None, cpu_utilization_range=(0.25, 0.7)),
        tasks_per_hour=14.0 * 8,
    )
    result = ClusterSimulator(machines, SimConfig(), seed=23).run(
        requests, horizon
    )
    series = all_machine_series(result.machine_usage, result.machines)
    # The busiest host, as in the paper's Fig. 13 sample machine.
    best = max(series.values(), key=lambda s: s.relative("cpu").mean())
    return best.relative("cpu")


def main() -> None:
    horizon = 4 * DAY
    cloud = google_host_series(horizon)
    _, grid, _ = generate_grid_host_series(horizon, seed=24)

    predictors = {
        "last-value": LastValue(),
        "moving-average(1h)": MovingAverage(window=12),
        "ewma(0.3)": EWMA(alpha=0.3),
        "AR(4)": AutoRegressive(order=4, train_window=288, refit_every=48),
        "markov-levels": MarkovLevel(),
    }

    results = {}
    for name, series in (("Google host", cloud), ("Grid host", grid)):
        scores = compare_predictors(predictors, series)
        results[name] = scores
        rows = [
            (s.predictor, f"{s.rmse:.4f}", f"{s.mae:.4f}", s.num_predictions)
            for s in scores
        ]
        print(
            render_table(
                ("predictor", "RMSE", "MAE", "#forecasts"),
                rows,
                title=f"{name} CPU-load prediction (5-min horizon):",
            )
        )
        print()

    best_cloud = results["Google host"][0]
    best_grid = results["Grid host"][0]
    ratio = best_cloud.rmse / max(best_grid.rmse, 1e-12)
    print(
        f"best-predictor RMSE, Cloud vs Grid: {best_cloud.rmse:.4f} vs "
        f"{best_grid.rmse:.4f}  ({ratio:.1f}x harder)"
    )
    print(
        "-> matches the paper's conclusion: the noisy, fine-grained Cloud "
        "load is fundamentally harder to predict than stable Grid load."
    )


if __name__ == "__main__":
    main()
