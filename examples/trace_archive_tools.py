"""Working with trace archives: GWA/SWF round-trips and conversion.

Shows the trace-format substrate: generate calibrated AuverGrid (GWA)
and ANL (SWF) workloads, write them in their native archive formats,
read them back, convert both into the common per-job table, and persist
a full Google-style trace as gzipped CSV.

Run:  python examples/trace_archive_tools.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import render_table
from repro.synth import DAY, GoogleConfig, generate_google_trace, generate_grid_jobs
from repro.traces import (
    grid_jobs_to_job_table,
    load_trace,
    read_gwa,
    read_swf,
    save_trace,
    validate_trace,
    write_gwa,
    write_swf,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    print(f"writing traces under {workdir}")

    # --- GWA round-trip (AuverGrid) --------------------------------------
    auvergrid = generate_grid_jobs("AuverGrid", 3 * DAY, seed=1)
    gwa_path = workdir / "auvergrid.gwa.gz"
    write_gwa(auvergrid, gwa_path)
    back = read_gwa(gwa_path)
    assert back == auvergrid
    print(f"GWA round-trip ok: {back.num_rows} AuverGrid jobs")

    # --- SWF round-trip (ANL) ---------------------------------------------
    anl = generate_grid_jobs("ANL", 3 * DAY, seed=2)
    swf_path = workdir / "anl.swf"
    write_swf(anl, swf_path, header="ANL synthetic workload")
    back = read_swf(swf_path)
    assert back == anl
    print(f"SWF round-trip ok: {back.num_rows} ANL jobs")

    # --- Conversion into the common job table ------------------------------
    rows = []
    for name, native in (("AuverGrid", auvergrid), ("ANL", anl)):
        jobs = grid_jobs_to_job_table(native)
        lengths = np.asarray(jobs["end_time"] - jobs["submit_time"])
        rows.append(
            (
                name,
                jobs.num_rows,
                round(float(lengths.mean()) / 3600, 2),
                round(float(jobs["cpu_usage"].mean()), 2),
                int(jobs["num_tasks"].max()),
            )
        )
    print()
    print(
        render_table(
            ("system", "jobs", "mean length (h)", "mean Eq.4 CPU", "max procs"),
            rows,
            title="converted to the common per-job schema:",
        )
    )

    # --- Full Google trace persistence --------------------------------------
    trace = generate_google_trace(
        horizon=6 * 3600.0,
        num_machines=10,
        seed=3,
        tasks_per_hour=150.0,
        config=GoogleConfig(busy_window=None),
    )
    trace_dir = workdir / "google-trace"
    save_trace(trace, trace_dir)
    reloaded = load_trace(trace_dir)
    validate_trace(reloaded)
    files = sorted(p.name for p in trace_dir.iterdir())
    print()
    print(f"Google trace saved + reloaded + validated: {files}")


if __name__ == "__main__":
    main()
