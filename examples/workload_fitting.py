"""Best-fit workload modeling: close the characterize->synthesize loop.

The paper's conclusion announces a search for the "best-fit load
model" as future work. This example runs that loop: generate Google
task lengths and AuverGrid job lengths from the calibrated models, fit
the candidate families (exponential, lognormal, Weibull, bounded
Pareto) by maximum likelihood, rank them by AIC/KS, and resample from
the winner to verify the recovered model reproduces the measured
mass-count disparity.

Run:  python examples/workload_fitting.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    fit_best,
    joint_ratio_label,
    mass_count,
    render_table,
)
from repro.synth import (
    AUVERGRID_TASK_LENGTH,
    GOOGLE_TASK_LENGTH,
)


def analyze(name: str, sample: np.ndarray, rng: np.random.Generator) -> None:
    fits = fit_best(sample)
    rows = [
        (
            f.family,
            f"{f.ks:.4f}",
            f"{f.aic:.3e}",
            ", ".join(f"{k}={v:.3g}" for k, v in f.params.items()),
        )
        for f in fits
    ]
    print(
        render_table(
            ("family", "KS", "AIC", "parameters"),
            rows,
            title=f"{name}: candidate fits (best first):",
        )
    )

    best = fits[0]
    mc_sample = mass_count(sample)
    line = (
        f"measured joint ratio {joint_ratio_label(mc_sample)}"
    )
    if best.distribution is not None:
        resampled = best.distribution.sample(rng, sample.size)
        mc_model = mass_count(resampled)
        line += (
            f"; best-fit {best.family} resample gives "
            f"{joint_ratio_label(mc_model)}"
        )
    print(line)
    print()


def main() -> None:
    rng = np.random.default_rng(41)
    google = GOOGLE_TASK_LENGTH.sample(rng, 50_000)
    auvergrid = AUVERGRID_TASK_LENGTH.sample(rng, 50_000)

    analyze("Google task lengths", google, rng)
    analyze("AuverGrid job lengths", auvergrid, rng)

    print(
        "Takeaway: AuverGrid is well described by a single lognormal, while "
        "Google's body+service-tail mixture defeats every single-family fit "
        "— the same heavy-tail structure behind the paper's 6/94 joint ratio."
    )


if __name__ == "__main__":
    main()
