"""Quickstart: generate a Google-style trace and characterize it.

Generates a small synthetic cluster trace in the clusterdata-2011
shape, validates its structural invariants, and prints the headline
workload statistics the paper reports (task lengths, submission rate,
completion mix, mass-count disparity).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    joint_ratio_label,
    mass_count,
    render_kv,
    submission_rate_stats,
)
from repro.synth import GoogleConfig, generate_google_trace
from repro.traces import completion_mix, job_lengths, task_lengths, validate_trace

HOUR = 3600.0


def main() -> None:
    # A 12-hour trace of a 20-machine slice of the cluster.
    horizon = 12 * HOUR
    trace = generate_google_trace(
        horizon=horizon,
        num_machines=20,
        seed=7,
        tasks_per_hour=300.0,
        config=GoogleConfig(busy_window=None),
    )
    validate_trace(trace)
    print(
        f"trace: {trace.num_jobs} jobs, {len(trace.task_events)} task events, "
        f"{len(trace.task_usage)} usage samples, {trace.num_machines} machines"
    )

    lengths = task_lengths(trace)
    mc = mass_count(lengths)
    print()
    print(
        render_kv(
            {
                "mean task length (min)": round(float(lengths.mean()) / 60, 1),
                "max task length (h)": round(float(lengths.max()) / 3600, 1),
                "joint ratio": joint_ratio_label(mc),
                "mm-distance (h)": round(mc.mm_distance / 3600, 2),
            },
            title="task lengths (mass-count disparity):",
        )
    )

    stats = submission_rate_stats(
        np.asarray(trace.jobs["submit_time"]), horizon
    )
    jl = job_lengths(trace)
    print()
    print(
        render_kv(
            {
                "jobs/hour (avg)": round(stats.avg_per_hour, 1),
                "fairness index": round(stats.fairness, 3),
                "median job length (s)": round(float(np.median(jl)), 1),
            },
            title="submission dynamics:",
        )
    )

    mix = completion_mix(trace)
    print()
    print(
        render_kv(
            {k: round(v, 3) for k, v in mix.items()},
            title="completion-event mix (paper: 59.2% abnormal):",
        )
    )


if __name__ == "__main__":
    main()
