"""Simulate a Google-style cluster and analyze its host load.

Runs the Section-II scheduling model (12 priorities, FCFS per priority,
preemptive balance placement) over a heterogeneous fleet for two
simulated days, then reproduces the per-machine analyses of Section IV:
queue state on the busiest host (Fig. 8), max-load per capacity group
(Fig. 7) and the unchanged-usage-level durations behind Tables II-III.

Run:  python examples/simulate_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.core import render_kv, render_table, usage_level_labels
from repro.hostload import (
    all_machine_series,
    duration_stats_by_level,
    machine_queue_state,
    max_load_by_capacity,
    pooled_level_durations,
    task_spans,
)
from repro.sim import ClusterSimulator, SimConfig
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

DAY = 86400.0


def main() -> None:
    rng = np.random.default_rng(11)
    machines = generate_machines(16, rng)
    horizon = 2 * DAY
    requests = generate_task_requests(
        horizon,
        seed=12,
        config=GoogleConfig(busy_window=None, cpu_utilization_range=(0.25, 0.7)),
        tasks_per_hour=14.0 * 16,
    )
    print(f"simulating {len(requests)} task requests on 16 machines ...")
    sim = ClusterSimulator(machines, SimConfig(), seed=13)
    result = sim.run(requests, horizon)
    print(render_kv({k: v for k, v in result.counts.items()}, title="event counts:"))

    # Fig. 8: queue state on the busiest machine.
    placed = result.task_events["machine_id"]
    busiest = int(
        np.bincount(placed[placed >= 0].astype(np.int64)).argmax()
    )
    qs = machine_queue_state(result.task_events, busiest)
    spans = task_spans(result.task_events, busiest)
    print()
    print(
        render_kv(
            {
                "machine": busiest,
                "task executions": len(spans),
                "final running": int(qs.running[-1]),
                "final finished": int(qs.finished[-1]),
                "abnormal share": round(
                    float(qs.abnormal[-1]) / max(int(qs.finished[-1]), 1), 3
                ),
            },
            title="Fig. 8-style queue state (busiest machine):",
        )
    )

    # Fig. 7: max load per CPU capacity group.
    series = all_machine_series(result.machine_usage, result.machines)
    rows = []
    for cap, dist in max_load_by_capacity(series, "cpu").items():
        rows.append(
            (
                cap,
                dist.num_machines,
                round(dist.mean_relative(), 3),
                round(dist.fraction_at_capacity(0.05), 3),
            )
        )
    print()
    print(
        render_table(
            ("cpu capacity", "machines", "mean max/cap", "frac at cap"),
            rows,
            title="Fig. 7-style max CPU load per capacity group:",
        )
    )

    # Tables II/III: unchanged usage-level durations.
    labels = usage_level_labels()
    for attribute in ("cpu", "mem"):
        stats = duration_stats_by_level(
            pooled_level_durations(series, attribute)
        )
        rows = [
            (labels[s.level], s.count, round(s.avg_minutes, 1))
            for s in stats
            if s.count
        ]
        print()
        print(
            render_table(
                ("level", "runs", "avg duration (min)"),
                rows,
                title=f"unchanged {attribute.upper()} level durations:",
            )
        )


if __name__ == "__main__":
    main()
